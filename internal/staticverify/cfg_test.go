package staticverify_test

import (
	"math/rand"
	"strings"
	"testing"

	"mavr/internal/asm"
	"mavr/internal/avr"
	"mavr/internal/core"
	"mavr/internal/firmware"
	"mavr/internal/staticverify"
)

// CFG recovery on the original image: every block becomes a function,
// blocks chain consistently, and the dispatcher's icall sites show up.
func TestRecoverOriginalImage(t *testing.T) {
	pre := genPre(t)
	g := staticverify.Recover(pre.Image, pre.Blocks, pre.RegionStart, pre.RegionEnd)

	for _, f := range g.Findings {
		if f.Severity == staticverify.SevError {
			t.Errorf("unexpected error finding on pristine image: %s", f)
		}
	}
	if len(g.Funcs) != len(pre.Blocks) {
		t.Fatalf("recovered %d funcs, want %d", len(g.Funcs), len(pre.Blocks))
	}
	if g.IndirectSiteCount() == 0 {
		t.Fatal("no indirect sites recovered; the scheduler dispatches via icall")
	}
	if g.EntryTargets == nil {
		t.Fatal("indirect sites present but no over-approximated target set")
	}
	if g.CallEdgeCount() == 0 {
		t.Fatal("no call edges recovered")
	}

	for _, fn := range g.Funcs {
		if len(fn.Blocks) == 0 {
			t.Fatalf("%s: no basic blocks", fn.Name)
		}
		if fn.Blocks[0].Start != fn.Start {
			t.Fatalf("%s: first block starts at 0x%X, func at 0x%X", fn.Name, fn.Blocks[0].Start, fn.Start)
		}
		for _, bb := range fn.Blocks {
			if bb.End <= bb.Start || bb.End > fn.End {
				t.Fatalf("%s: block [0x%X,0x%X) escapes func [0x%X,0x%X)", fn.Name, bb.Start, bb.End, fn.Start, fn.End)
			}
			for _, s := range bb.Succs {
				if s < fn.Start || s >= fn.End {
					t.Fatalf("%s: successor 0x%X outside func", fn.Name, s)
				}
			}
		}
		// Call edges must point at function entries or fixed code.
		for _, c := range fn.Calls {
			if c >= pre.RegionStart && pre.BlockIndex(c) >= 0 {
				i := pre.BlockIndex(c)
				if pre.Blocks[i].Start != c {
					t.Fatalf("%s: call edge 0x%X is not a function entry", fn.Name, c)
				}
			}
		}
	}
}

// Vector-table entries in the fixed region must be enumerated as
// indirect-eligible entries, and each must decode as a jmp.
func TestRecoverFixedEntries(t *testing.T) {
	pre := genPre(t)
	g := staticverify.Recover(pre.Image, pre.Blocks, pre.RegionStart, pre.RegionEnd)
	if len(g.FixedEntries) < firmware.NumVectors {
		t.Fatalf("%d fixed entries, want at least %d vectors", len(g.FixedEntries), firmware.NumVectors)
	}
	for v := 0; v < firmware.NumVectors; v++ {
		in := avr.DecodeAt(pre.Image, uint32(v*2))
		if in.Op != avr.OpJMP {
			t.Fatalf("vector %d is %s, want jmp", v, in.Op)
		}
	}
}

// The CFG of the randomized image must be structurally the same program:
// identical per-function block and instruction counts, with functions
// matched by name.
func TestRecoverInvariantUnderRandomization(t *testing.T) {
	pre := genPre(t)
	g := staticverify.Recover(pre.Image, pre.Blocks, pre.RegionStart, pre.RegionEnd)
	orig := make(map[string]*staticverify.Func, len(g.Funcs))
	for _, fn := range g.Funcs {
		orig[fn.Name] = fn
	}

	r, err := core.Randomize(pre, core.Permutation(rand.New(rand.NewSource(9)), len(pre.Blocks)))
	if err != nil {
		t.Fatal(err)
	}
	rg := staticverify.Recover(r.Image, staticverify.RelocatedBlocks(pre, r), pre.RegionStart, pre.RegionEnd)
	for _, fn := range rg.Funcs {
		o, ok := orig[fn.Name]
		if !ok {
			t.Fatalf("randomized image grew function %q", fn.Name)
		}
		if len(fn.Blocks) != len(o.Blocks) || fn.Instrs != o.Instrs {
			t.Fatalf("%s: structure changed under randomization: %d/%d blocks, %d/%d instrs",
				fn.Name, len(fn.Blocks), len(o.Blocks), fn.Instrs, o.Instrs)
		}
		if len(fn.Calls) != len(o.Calls) {
			t.Fatalf("%s: call-edge count changed: %d vs %d", fn.Name, len(fn.Calls), len(o.Calls))
		}
	}
}

// synthGraph recovers a CFG from one synthetic function placed at a
// byte offset inside an image of the given size.
func synthGraph(t *testing.T, imgBytes int, at uint32, words []uint16) *staticverify.Graph {
	t.Helper()
	img := make([]byte, imgBytes)
	for i, w := range words {
		img[int(at)+2*i] = byte(w)
		img[int(at)+2*i+1] = byte(w >> 8)
	}
	size := uint32(len(words) * 2)
	blocks := []core.Block{{Name: "synth", Start: at, Size: size}}
	return staticverify.Recover(img, blocks, at, at+size)
}

// Relative transfers whose offset leaves [0, FlashWords) and extended
// indirect transfers on images beyond the 16-bit Z reach must surface
// as dangling-edge findings instead of silently truncating.
func TestRecoverFlashBoundaryAndExtendedTransfers(t *testing.T) {
	big := 0x20000 + 0x100 // just past the 128 KiB Z reach
	cases := []struct {
		name     string
		imgBytes int
		at       uint32
		words    []uint16
		wantSev  staticverify.Severity
		wantSub  string // "" = no dangling-edge finding at all
	}{
		{
			name:     "rjmp-wraps-below-zero",
			imgBytes: 0x400, at: 0,
			words:   []uint16{asm.RJMP(-3), asm.RET},
			wantSev: staticverify.SevError, wantSub: "wraps around the flash boundary",
		},
		{
			name:     "rcall-wraps-below-zero",
			imgBytes: 0x400, at: 0,
			words:   []uint16{asm.RCALL(-5), asm.RET},
			wantSev: staticverify.SevError, wantSub: "wraps around the flash boundary",
		},
		{
			name:     "rjmp-wraps-past-flash-end",
			imgBytes: avr.FlashSize, at: avr.FlashSize - 4,
			words:   []uint16{asm.RJMP(2), asm.RET},
			wantSev: staticverify.SevError, wantSub: "wraps around the flash boundary",
		},
		{
			name:     "rjmp-in-range-is-clean",
			imgBytes: 0x400, at: 0,
			words: []uint16{asm.RJMP(1), asm.NOP, asm.RET},
		},
		{
			name:     "eijmp-small-image-is-clean",
			imgBytes: 0x400, at: 0,
			words: []uint16{asm.EIJMP},
		},
		{
			name:     "eicall-small-image-is-clean",
			imgBytes: 0x400, at: 0,
			words: []uint16{asm.EICALL, asm.RET},
		},
		{
			name:     "eijmp-large-image-warns",
			imgBytes: big, at: 0,
			words:   []uint16{asm.EIJMP},
			wantSev: staticverify.SevWarn, wantSub: "EIND",
		},
		{
			name:     "eicall-large-image-warns",
			imgBytes: big, at: 0,
			words:   []uint16{asm.EICALL, asm.RET},
			wantSev: staticverify.SevWarn, wantSub: "EIND",
		},
		{
			name:     "icall-large-image-is-clean",
			imgBytes: big, at: 0,
			words: []uint16{asm.ICALL, asm.RET},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := synthGraph(t, tc.imgBytes, tc.at, tc.words)
			var hit *staticverify.Finding
			for i, f := range g.Findings {
				if f.Kind == staticverify.KindDanglingEdge {
					hit = &g.Findings[i]
					break
				}
			}
			if tc.wantSub == "" {
				if hit != nil {
					t.Fatalf("unexpected dangling-edge finding: %s", *hit)
				}
				return
			}
			if hit == nil {
				t.Fatalf("no dangling-edge finding; all findings: %v", g.Findings)
			}
			if hit.Severity != tc.wantSev {
				t.Errorf("severity = %s, want %s (%s)", hit.Severity, tc.wantSev, *hit)
			}
			if !strings.Contains(hit.Detail, tc.wantSub) {
				t.Errorf("detail %q does not mention %q", hit.Detail, tc.wantSub)
			}
		})
	}
}
