package staticverify

import (
	"sort"
	"sync/atomic"

	"mavr/internal/avr"
	"mavr/internal/core"
	"mavr/internal/firmware"
	"mavr/internal/gadget"
	"mavr/internal/staticverify/vsa"
)

// Base is a reusable verification handle for one base image: everything
// Verify derives from the original (pre-randomization) image alone —
// the decoded instruction stream, the conservative CFG and the original
// gadget census — computed once and amortized across arbitrarily many
// permutations of that image. Verify on a Base produces a Report that
// is byte-for-byte identical to the stateless Verify; the fast path is
// only taken when it can prove that equality, and anything it cannot
// prove falls back to the stateless implementation.
//
// The soundness argument for the fast path: the lockstep diff proves
// the randomized image is, instruction for instruction, the base image
// with blocks relocated and transfer targets remapped through the
// permutation's bijection. Under that proof every CFG classification
// (entry/fixed/interior/dangling, block leaders, call edges, indirect
// sites) is invariant, so a base CFG with zero findings implies a
// randomized CFG with zero findings and identical stats. If the diff
// finds any divergence, or the base CFG itself has findings whose
// addresses would need textual translation, Base.Verify re-runs the
// full stateless Verify instead of translating.
//
// A Base is safe for concurrent use by multiple goroutines once built.
type Base struct {
	pre  *core.Preprocessed
	opts Options

	// regions holds the decoded base instruction stream: the fixed
	// low-flash region followed by one region per block, in
	// pre.Blocks order.
	regions  []baseRegion
	stats    CFGStats
	cfgClean bool
	vecEnd   uint32

	// vsaRes is the base-image value-set analysis (opts.VSA on a clean
	// base CFG). Its addresses are function-relative and its details
	// address-free, so it translates exactly to any permutation whose
	// lockstep diff passes and whose image agrees with the base on
	// vsaRes.Reads. fixedEntries reconstructs the translated
	// entry-target set.
	vsaRes       *vsa.Result
	fixedEntries []uint32

	// origGadgets/origAt cache the original-image gadget census when
	// opts.Gadgets is set.
	origGadgets []*gadget.Gadget
	origAt      map[uint32]*gadget.Gadget

	fast     atomic.Uint64
	fallback atomic.Uint64
}

// baseInstr is one decoded base-image instruction at a region-relative
// word offset.
type baseInstr struct {
	pc uint32 // word offset from the region start
	in avr.Instr
}

// baseRegion is the decoded stream of one contiguous code range of the
// base image: the fixed region (oldStart 0) or one function block.
type baseRegion struct {
	oldStart uint32 // byte address in the base image
	size     uint32 // bytes
	instrs   []baseInstr
	// clean is false when linear decoding stopped early (invalid opcode
	// or extent overrun) — the fresh diff emits a finding there, so the
	// fast path cannot be taken.
	clean bool
}

// BaseStats counts how Base.Verify resolved its calls.
type BaseStats struct {
	// FastVerifies took the cached path end to end.
	FastVerifies uint64
	// FallbackVerifies re-ran the stateless Verify (diff divergence,
	// base findings, or size mismatch).
	FallbackVerifies uint64
}

// NewBase builds the cached verification handle for one preprocessed
// base image under fixed options. The same opts apply to every Verify
// on the handle; NewBase(pre, opts).Verify(r) == Verify(pre, r, opts)
// byte for byte.
func NewBase(pre *core.Preprocessed, opts Options) *Base {
	b := &Base{pre: pre, opts: opts}

	vecEnd := uint32(firmware.NumVectors) * 4
	if vecEnd > pre.RegionStart {
		vecEnd = pre.RegionStart
	}
	b.vecEnd = vecEnd

	b.regions = append(b.regions, decodeRegion(pre.Image, 0, pre.RegionStart))
	for _, blk := range pre.Blocks {
		b.regions = append(b.regions, decodeRegion(pre.Image, blk.Start, blk.Size))
	}

	g := Recover(pre.Image, pre.Blocks, pre.RegionStart, pre.RegionEnd)
	b.stats = CFGStats{
		Funcs:           len(g.Funcs),
		BasicBlocks:     g.BasicBlockCount(),
		CallEdges:       g.CallEdgeCount(),
		IndirectSites:   g.IndirectSiteCount(),
		IndirectTargets: len(g.EntryTargets),
	}
	for _, f := range g.Funcs {
		b.stats.Instrs += f.Instrs
	}
	b.cfgClean = len(g.Findings) == 0

	if opts.VSA && b.cfgClean {
		// The base graph's function order is pre.Blocks order, so result
		// index i translates through r.NewStart[i].
		b.vsaRes = vsa.Analyze(vsaInput(pre.Image, g, pre))
		b.fixedEntries = g.FixedEntries
	}

	if opts.Gadgets {
		maxWords := opts.GadgetMaxWords
		if maxWords <= 0 {
			maxWords = 24
		}
		b.origGadgets = gadget.Scan(pre.Image, maxWords)
		b.origAt = gadgetIndex(b.origGadgets)
	}
	return b
}

// decodeRegion linearly decodes size bytes of base-image code starting
// at byte address start.
func decodeRegion(img []byte, start, size uint32) baseRegion {
	reg := baseRegion{oldStart: start, size: size, clean: true}
	startW, endW := start/2, (start+size)/2
	for pc := startW; pc < endW; {
		in := avr.DecodeAt(img, pc)
		if in.Op == avr.OpInvalid || pc+uint32(in.Words) > endW {
			reg.clean = false
			break
		}
		reg.instrs = append(reg.instrs, baseInstr{pc: pc - startW, in: in})
		pc += uint32(in.Words)
	}
	return reg
}

// Stats returns how many Verify calls took the fast vs. fallback path.
func (b *Base) Stats() BaseStats {
	return BaseStats{FastVerifies: b.fast.Load(), FallbackVerifies: b.fallback.Load()}
}

// Pre returns the preprocessed base image the handle was built from.
func (b *Base) Pre() *core.Preprocessed { return b.pre }

// Verify verifies one randomization outcome of the handle's base image,
// producing exactly the Report the stateless Verify(pre, r, opts)
// would. Clean outcomes of a clean base take the cached fast path; any
// divergence falls back to the stateless implementation, so defective
// images are reported with full findings.
func (b *Base) Verify(r *core.Randomized) *Report {
	st, ok := b.fastDiff(r)
	if !ok || !b.cfgClean {
		b.fallback.Add(1)
		return Verify(b.pre, r, b.opts)
	}
	if b.opts.VSA && (b.vsaRes == nil || !b.vsaRes.ReadsEqual(b.pre.Image, r.Image)) {
		// The analysis depended on a flash byte the permutation changed
		// outside what the structural diff models; re-analyze fresh.
		b.fallback.Add(1)
		return Verify(b.pre, r, b.opts)
	}
	b.fast.Add(1)

	rep := &Report{
		Blocks:      len(b.pre.Blocks),
		RegionStart: b.pre.RegionStart,
		RegionEnd:   b.pre.RegionEnd,
		CFG:         b.stats,
		Diff:        st,
	}
	demote := false
	if b.opts.VSA {
		var vfs []Finding
		rep.VSA, vfs, demote = renderVSA(b.vsaRes, b.translatedLayout(r))
		rep.Findings = append(rep.Findings, vfs...)
	}
	if b.opts.Gadgets {
		maxWords := b.opts.GadgetMaxWords
		if maxWords <= 0 {
			maxWords = 24
		}
		audit, gfs := auditGadgetsAgainst(b.pre, r, maxWords, b.origGadgets, b.origAt, demote)
		rep.Gadgets = &audit
		rep.Findings = append(rep.Findings, gfs...)
	}
	sortFindings(rep.Findings)
	return rep
}

// translatedLayout positions the cached base analysis in one
// permutation's image: function i (pre.Blocks order, the base graph's
// order) now starts at r.NewStart[i], and the entry-target set is the
// fixed entries plus the relocated block starts — exactly what
// recovering the randomized image's graph would compute.
func (b *Base) translatedLayout(r *core.Randomized) vsaLayout {
	lay := vsaLayout{
		img:   r.Image,
		name:  func(i int) string { return b.pre.Blocks[i].Name },
		start: func(i int) uint32 { return r.NewStart[i] },
	}
	if b.stats.IndirectSites > 0 {
		ents := make([]uint32, 0, len(b.fixedEntries)+len(r.NewStart))
		ents = append(ents, b.fixedEntries...)
		ents = append(ents, r.NewStart...)
		sort.Slice(ents, func(i, j int) bool { return ents[i] < ents[j] })
		lay.entries = ents
	}
	return lay
}

// VSASummary reports the cached base analysis' site resolution: how
// many indirect sites the image has and how many resolved to proven
// target sets. ok is false when the handle has no cached analysis
// (VSA disabled, or the base CFG was not clean).
func (b *Base) VSASummary() (sites, resolved int, ok bool) {
	if b.vsaRes == nil {
		return 0, 0, false
	}
	for _, s := range b.vsaRes.Sites {
		sites++
		if s.Resolved {
			resolved++
		}
	}
	return sites, resolved, true
}

// fastDiff is the cached-stream patch-completeness walk. It returns
// (stats, true) exactly when the stateless VerifyPatches would return
// zero findings — and then with identical stats. Any would-be finding
// (or a base stream the fresh diff would truncate) returns ok=false
// without attempting to reproduce the finding text.
func (b *Base) fastDiff(r *core.Randomized) (DiffStats, bool) {
	var st DiffStats
	pre := b.pre
	if len(r.Image) != len(pre.Image) || len(r.NewStart) != len(pre.Blocks) {
		return st, false
	}
	remap := remapper(pre, r)
	newStarts := make(map[uint32]bool, len(pre.Blocks))
	for i := range pre.Blocks {
		newStarts[r.NewStart[i]] = true
	}

	for ri := range b.regions {
		reg := &b.regions[ri]
		if !reg.clean {
			return st, false // fresh diff emits an undecodable finding here
		}
		newStart := reg.oldStart // fixed region stays put
		if ri > 0 {
			newStart = r.NewStart[ri-1]
		}
		oldW, newW := reg.oldStart/2, newStart/2
		for i := range reg.instrs {
			bi := &reg.instrs[i]
			oin := &bi.in
			pc := bi.pc
			st.WordsCompared += oin.Words

			switch oin.Op {
			case avr.OpJMP, avr.OpCALL:
				st.TransfersChecked++
				nin := avr.DecodeAt(r.Image, newW+pc)
				if nin.Op != oin.Op || nin.Words != oin.Words {
					return st, false
				}
				want := remap(oin.Target * 2)
				if nin.Target*2 != want {
					return st, false
				}
				if avr.DecodeAt(r.Image, want/2).Op == avr.OpInvalid {
					return st, false
				}
			case avr.OpRJMP, avr.OpRCALL, avr.OpBRBS, avr.OpBRBC:
				st.TransfersChecked++
				nin := avr.DecodeAt(r.Image, newW+pc)
				if nin.Op != oin.Op || nin.Words != oin.Words {
					return st, false
				}
				oldAbs := uint32(int64(oldW+pc)+1+int64(oin.K)) * 2
				newAbs := uint32(int64(newW+pc)+1+int64(nin.K)) * 2
				if newAbs != remap(oldAbs) {
					return st, false
				}
			case avr.OpSPM:
				return st, false // unverifiable: fresh diff emits an error
			default:
				// Everything else must be byte-identical.
				if wordAt(pre.Image, oldW+pc) != wordAt(r.Image, newW+pc) {
					return st, false
				}
				if oin.Words == 2 && wordAt(pre.Image, oldW+pc+1) != wordAt(r.Image, newW+pc+1) {
					return st, false
				}
			}
		}
	}

	// Data-section function pointers, exactly as the fresh diff checks
	// them.
	for _, off := range pre.PtrOffsets {
		if int(off)+1 >= len(pre.Image) {
			return st, false
		}
		st.PointersChecked++
		oldWd := uint32(pre.Image[off]) | uint32(pre.Image[off+1])<<8
		newWd := uint32(r.Image[off]) | uint32(r.Image[off+1])<<8
		want := remap(oldWd*2) / 2
		if newWd != want {
			return st, false
		}
		if t := want * 2; !newStarts[t] && t >= pre.RegionStart {
			return st, false
		}
	}

	// Vector entries must land on relocated entries (or fixed code).
	for pc := uint32(0); pc*2 < b.vecEnd; pc += 2 {
		in := avr.DecodeAt(r.Image, pc)
		if in.Op != avr.OpJMP {
			continue
		}
		st.VectorsChecked++
		if t := in.Target * 2; !newStarts[t] && t >= pre.RegionStart {
			return st, false
		}
	}
	return st, true
}
