package staticverify

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mavr/internal/core"
)

// Options tunes a Verify run.
type Options struct {
	// Gadgets enables the residual gadget audit (two full image scans;
	// skip it on hot boot paths where only correctness matters).
	Gadgets bool
	// GadgetMaxWords is the maximum gadget window, as in gadget.Scan.
	GadgetMaxWords int
}

// DefaultOptions is what cmd/mavr-verify and mavr-randomize use: full
// verification including the gadget audit at the §VII-A census window.
func DefaultOptions() Options {
	return Options{Gadgets: true, GadgetMaxWords: 24}
}

// CFGStats summarizes the recovered graph.
type CFGStats struct {
	Funcs         int `json:"funcs"`
	BasicBlocks   int `json:"basic_blocks"`
	CallEdges     int `json:"call_edges"`
	IndirectSites int `json:"indirect_sites"`
	// IndirectTargets is the size of the over-approximated indirect
	// target set (0 when the image has no indirect sites).
	IndirectTargets int `json:"indirect_targets"`
	Instrs          int `json:"instrs"`
}

// Report is the complete result of verifying one randomization outcome.
type Report struct {
	Blocks      int          `json:"blocks"`
	RegionStart uint32       `json:"region_start"`
	RegionEnd   uint32       `json:"region_end"`
	CFG         CFGStats     `json:"cfg"`
	Diff        DiffStats    `json:"diff"`
	Gadgets     *GadgetAudit `json:"gadgets,omitempty"`
	Findings    []Finding    `json:"findings"`
}

// Errors counts error-severity findings: the ones that make an image
// unflashable.
func (r *Report) Errors() int { return countBySeverity(r.Findings, SevError) }

// Warnings counts warning-severity findings.
func (r *Report) Warnings() int { return countBySeverity(r.Findings, SevWarn) }

// OK reports whether the image is provably patch-complete: no
// error-severity findings.
func (r *Report) OK() bool { return r.Errors() == 0 }

// Verify runs the full static verification of one randomization
// outcome: CFG recovery over the randomized image, the
// patch-completeness diff against the original, and (per opts) the
// residual gadget audit.
func Verify(pre *core.Preprocessed, r *core.Randomized, opts Options) *Report {
	rep := &Report{
		Blocks:      len(pre.Blocks),
		RegionStart: pre.RegionStart,
		RegionEnd:   pre.RegionEnd,
	}

	diffFindings, diffStats := VerifyPatches(pre, r)
	rep.Diff = diffStats

	var graphFindings []Finding
	if len(r.Image) == len(pre.Image) {
		g := Recover(r.Image, RelocatedBlocks(pre, r), pre.RegionStart, pre.RegionEnd)
		rep.CFG = CFGStats{
			Funcs:           len(g.Funcs),
			BasicBlocks:     g.BasicBlockCount(),
			CallEdges:       g.CallEdgeCount(),
			IndirectSites:   g.IndirectSiteCount(),
			IndirectTargets: len(g.EntryTargets),
		}
		for _, f := range g.Funcs {
			rep.CFG.Instrs += f.Instrs
		}
		graphFindings = g.Findings
	}

	// The diff and the CFG both flag spm/undecodable sites; keep one
	// finding per (kind, addr).
	seen := make(map[string]bool, len(diffFindings))
	add := func(fs []Finding) {
		for _, f := range fs {
			key := fmt.Sprintf("%s@%d@%s", f.Kind, f.Addr, f.Block)
			if seen[key] {
				continue
			}
			seen[key] = true
			rep.Findings = append(rep.Findings, f)
		}
	}
	add(diffFindings)
	add(graphFindings)

	if opts.Gadgets {
		maxWords := opts.GadgetMaxWords
		if maxWords <= 0 {
			maxWords = 24
		}
		audit, gfs := AuditGadgets(pre, r, maxWords)
		rep.Gadgets = &audit
		rep.Findings = append(rep.Findings, gfs...)
	}

	sortFindings(rep.Findings)
	return rep
}

// sortFindings applies the canonical report ordering — severity
// descending, then address — shared by the stateless Verify and the
// cached Base.Verify (report equality between the two depends on it).
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Severity != fs[j].Severity {
			return fs[i].Severity > fs[j].Severity
		}
		return fs[i].Addr < fs[j].Addr
	})
}

// WriteText renders the report for terminals.
func (r *Report) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "verify: %d blocks, region [0x%X,0x%X)\n", r.Blocks, r.RegionStart, r.RegionEnd)
	fmt.Fprintf(w, "  cfg:  %d funcs, %d basic blocks, %d call edges, %d indirect sites (over-approximated to %d entry targets), %d instrs\n",
		r.CFG.Funcs, r.CFG.BasicBlocks, r.CFG.CallEdges, r.CFG.IndirectSites, r.CFG.IndirectTargets, r.CFG.Instrs)
	fmt.Fprintf(w, "  diff: %d transfers, %d vectors, %d pointers proven remapped (%d words compared)\n",
		r.Diff.TransfersChecked, r.Diff.VectorsChecked, r.Diff.PointersChecked, r.Diff.WordsCompared)
	if r.Gadgets != nil {
		fmt.Fprintf(w, "  gadgets: %d orig, %d randomized, %d stable (%d inside shuffled region)\n",
			r.Gadgets.Orig, r.Gadgets.Rand, r.Gadgets.Stable, r.Gadgets.StableInRegion)
	}
	for _, f := range r.Findings {
		fmt.Fprintf(w, "  %s\n", f)
	}
	verdict := "PASS"
	if !r.OK() {
		verdict = "FAIL"
	}
	_, err := fmt.Fprintf(w, "  findings: %d errors, %d warnings, %d info — %s\n",
		r.Errors(), r.Warnings(), countBySeverity(r.Findings, SevInfo), verdict)
	return err
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
