package staticverify

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mavr/internal/core"
	"mavr/internal/gadget"
	"mavr/internal/staticverify/vsa"
)

// Options tunes a Verify run.
type Options struct {
	// Gadgets enables the residual gadget audit (two full image scans;
	// skip it on hot boot paths where only correctness matters).
	Gadgets bool
	// GadgetMaxWords is the maximum gadget window, as in gadget.Scan.
	GadgetMaxWords int
	// VSA enables value-set abstract interpretation over the recovered
	// CFG: indirect sites resolve to proven target sets where the
	// pointer provably comes from an enumerable source, per-function
	// stack discipline is proven or reported, and the gadget audit is
	// re-ranked by indirect-edge reachability.
	VSA bool
}

// DefaultOptions is what cmd/mavr-verify and mavr-randomize use: full
// verification including the gadget audit at the §VII-A census window.
func DefaultOptions() Options {
	return Options{Gadgets: true, GadgetMaxWords: 24}
}

// CFGStats summarizes the recovered graph.
type CFGStats struct {
	Funcs         int `json:"funcs"`
	BasicBlocks   int `json:"basic_blocks"`
	CallEdges     int `json:"call_edges"`
	IndirectSites int `json:"indirect_sites"`
	// IndirectTargets is the size of the over-approximated indirect
	// target set (0 when the image has no indirect sites).
	IndirectTargets int `json:"indirect_targets"`
	Instrs          int `json:"instrs"`
}

// Report is the complete result of verifying one randomization outcome.
type Report struct {
	Blocks      int          `json:"blocks"`
	RegionStart uint32       `json:"region_start"`
	RegionEnd   uint32       `json:"region_end"`
	CFG         CFGStats     `json:"cfg"`
	Diff        DiffStats    `json:"diff"`
	VSA         *VSAInfo     `json:"vsa,omitempty"`
	Gadgets     *GadgetAudit `json:"gadgets,omitempty"`
	Findings    []Finding    `json:"findings"`
}

// Errors counts error-severity findings: the ones that make an image
// unflashable.
func (r *Report) Errors() int { return countBySeverity(r.Findings, SevError) }

// Warnings counts warning-severity findings.
func (r *Report) Warnings() int { return countBySeverity(r.Findings, SevWarn) }

// OK reports whether the image is provably patch-complete: no
// error-severity findings.
func (r *Report) OK() bool { return r.Errors() == 0 }

// Verify runs the full static verification of one randomization
// outcome: CFG recovery over the randomized image, the
// patch-completeness diff against the original, and (per opts) the
// residual gadget audit.
func Verify(pre *core.Preprocessed, r *core.Randomized, opts Options) *Report {
	rep := &Report{
		Blocks:      len(pre.Blocks),
		RegionStart: pre.RegionStart,
		RegionEnd:   pre.RegionEnd,
	}

	diffFindings, diffStats := VerifyPatches(pre, r)
	rep.Diff = diffStats

	var graphFindings, vsaFindings []Finding
	demote := false
	if len(r.Image) == len(pre.Image) {
		g := Recover(r.Image, RelocatedBlocks(pre, r), pre.RegionStart, pre.RegionEnd)
		rep.CFG = CFGStats{
			Funcs:           len(g.Funcs),
			BasicBlocks:     g.BasicBlockCount(),
			CallEdges:       g.CallEdgeCount(),
			IndirectSites:   g.IndirectSiteCount(),
			IndirectTargets: len(g.EntryTargets),
		}
		for _, f := range g.Funcs {
			rep.CFG.Instrs += f.Instrs
		}
		graphFindings = g.Findings
		if opts.VSA {
			res := vsa.Analyze(vsaInput(r.Image, g, pre))
			rep.VSA, vsaFindings, demote = renderVSA(res, graphLayout(r.Image, g))
		}
	}

	// The diff and the CFG both flag spm/undecodable sites; keep one
	// finding per (kind, addr).
	seen := make(map[string]bool, len(diffFindings))
	add := func(fs []Finding) {
		for _, f := range fs {
			key := fmt.Sprintf("%s@%d@%s", f.Kind, f.Addr, f.Block)
			if seen[key] {
				continue
			}
			seen[key] = true
			rep.Findings = append(rep.Findings, f)
		}
	}
	add(diffFindings)
	add(graphFindings)
	add(vsaFindings)

	if opts.Gadgets {
		maxWords := opts.GadgetMaxWords
		if maxWords <= 0 {
			maxWords = 24
		}
		origGs := gadget.Scan(pre.Image, maxWords)
		audit, gfs := auditGadgetsAgainst(pre, r, maxWords, origGs, gadgetIndex(origGs), demote)
		rep.Gadgets = &audit
		rep.Findings = append(rep.Findings, gfs...)
	}

	sortFindings(rep.Findings)
	return rep
}

// sortFindings applies the canonical report ordering — severity
// descending, then address, then kind, block and detail — shared by
// the stateless Verify and the cached Base.Verify (report equality
// between the two depends on it). The trailing tiebreaks make the
// order a total one, so two runs that discover the same findings in
// different orders render byte-identical reports.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Severity != fs[j].Severity {
			return fs[i].Severity > fs[j].Severity
		}
		if fs[i].Addr != fs[j].Addr {
			return fs[i].Addr < fs[j].Addr
		}
		if fs[i].Kind != fs[j].Kind {
			return fs[i].Kind < fs[j].Kind
		}
		if fs[i].Block != fs[j].Block {
			return fs[i].Block < fs[j].Block
		}
		return fs[i].Detail < fs[j].Detail
	})
}

// WriteText renders the report for terminals.
func (r *Report) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "verify: %d blocks, region [0x%X,0x%X)\n", r.Blocks, r.RegionStart, r.RegionEnd)
	fmt.Fprintf(w, "  cfg:  %d funcs, %d basic blocks, %d call edges, %d indirect sites (over-approximated to %d entry targets), %d instrs\n",
		r.CFG.Funcs, r.CFG.BasicBlocks, r.CFG.CallEdges, r.CFG.IndirectSites, r.CFG.IndirectTargets, r.CFG.Instrs)
	fmt.Fprintf(w, "  diff: %d transfers, %d vectors, %d pointers proven remapped (%d words compared)\n",
		r.Diff.TransfersChecked, r.Diff.VectorsChecked, r.Diff.PointersChecked, r.Diff.WordsCompared)
	if r.VSA != nil {
		fmt.Fprintf(w, "  vsa:  %d/%d indirect sites resolved (max proven target set %d, vs %d entry targets), %d/%d functions stack-proven\n",
			r.VSA.ResolvedSites, r.VSA.TotalSites, r.VSA.MaxTargets, r.VSA.EntryTargets, r.VSA.StackProven, r.VSA.StackFuncs)
	}
	if r.Gadgets != nil {
		fmt.Fprintf(w, "  gadgets: %d orig, %d randomized, %d stable (%d inside shuffled region)\n",
			r.Gadgets.Orig, r.Gadgets.Rand, r.Gadgets.Stable, r.Gadgets.StableInRegion)
	}
	for _, f := range r.Findings {
		fmt.Fprintf(w, "  %s\n", f)
	}
	verdict := "PASS"
	if !r.OK() {
		verdict = "FAIL"
	}
	_, err := fmt.Fprintf(w, "  findings: %d errors, %d warnings, %d info — %s\n",
		r.Errors(), r.Warnings(), countBySeverity(r.Findings, SevInfo), verdict)
	return err
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
