package staticverify

import (
	"fmt"
	"sort"

	"mavr/internal/avr"
	"mavr/internal/core"
)

// TermKind says how a basic block ends.
type TermKind int

// Basic-block terminators.
const (
	// TermFall: execution continues into the next block.
	TermFall TermKind = iota + 1
	// TermJump: unconditional jmp/rjmp.
	TermJump
	// TermBranch: conditional branch (taken + fallthrough successors).
	TermBranch
	// TermSkip: cpse/sbrc/sbrs/sbic/sbis (skip + fallthrough successors).
	TermSkip
	// TermRet: ret/reti.
	TermRet
	// TermIndirect: ijmp/eijmp — successors over-approximated.
	TermIndirect
	// TermStop: decoding could not continue (invalid opcode, function
	// end overrun).
	TermStop
)

// BasicBlock is a maximal straight-line run of instructions. Addresses
// are byte addresses into the image the graph was recovered from.
type BasicBlock struct {
	Start, End uint32
	// Succs are the byte addresses of intra-function successor blocks.
	Succs []uint32
	Term  TermKind
}

// Func is the recovered control-flow graph of one function block.
type Func struct {
	Name       string
	Start, End uint32
	Blocks     []BasicBlock
	// Calls are callee entry byte addresses reached by direct
	// call/rcall or tail jumps out of the function, deduplicated.
	Calls []uint32
	// IndirectSites counts icall/eicall/ijmp/eijmp instructions; their
	// target set is over-approximated by Graph.EntryTargets.
	IndirectSites int
	// HasSPM marks the function self-modifying and unverifiable.
	HasSPM bool
	// Instrs counts decoded instructions.
	Instrs int
}

// Graph is a conservative whole-image CFG and call graph.
type Graph struct {
	RegionStart, RegionEnd uint32
	Funcs                  []*Func
	// FixedEntries are instruction starts in the fixed low-flash region
	// (interrupt vectors and dispatch stubs), byte addresses.
	FixedEntries []uint32
	// EntryTargets is the indirect-edge over-approximation: every
	// function entry plus every fixed entry. Nil when the image has no
	// indirect sites.
	EntryTargets []uint32
	// Findings are structural problems discovered during recovery.
	Findings []Finding
}

// RelocatedBlocks maps the preprocessed block list through a
// randomization outcome: the same functions at their new starts, sorted
// by new address.
func RelocatedBlocks(pre *core.Preprocessed, r *core.Randomized) []core.Block {
	out := make([]core.Block, len(pre.Blocks))
	for i, b := range pre.Blocks {
		out[i] = core.Block{Name: b.Name, Start: r.NewStart[i], Size: b.Size}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Recover builds the conservative CFG of img. blocks must be the
// function blocks tiling [regionStart, regionEnd) in this image (for a
// randomized image, RelocatedBlocks). Code below regionStart is the
// fixed vector/stub region; bytes at regionEnd and above are opaque
// data.
func Recover(img []byte, blocks []core.Block, regionStart, regionEnd uint32) *Graph {
	g := &Graph{RegionStart: regionStart, RegionEnd: regionEnd}

	entries := make(map[uint32]bool, len(blocks))
	for _, b := range blocks {
		entries[b.Start] = true
	}

	// The fixed region is a run of 2-word jmp slots (vector table and
	// dispatch stubs); every decoded instruction start is an entry an
	// indirect transfer may legitimately reach.
	for pc := uint32(0); pc*2 < regionStart; {
		in := avr.DecodeAt(img, pc)
		g.FixedEntries = append(g.FixedEntries, pc*2)
		if in.Op == avr.OpInvalid {
			g.Findings = append(g.Findings, Finding{
				Kind: KindUndecodable, Severity: SevError, Addr: pc * 2,
				Detail: "invalid opcode in fixed vector/stub region",
			})
			break
		}
		pc += uint32(in.Words)
	}

	indirect := 0
	for _, b := range blocks {
		fn, fs := recoverFunc(img, b, entries, regionStart, regionEnd)
		g.Funcs = append(g.Funcs, fn)
		g.Findings = append(g.Findings, fs...)
		indirect += fn.IndirectSites
	}
	if indirect > 0 {
		g.EntryTargets = append(g.EntryTargets, g.FixedEntries...)
		for _, b := range blocks {
			g.EntryTargets = append(g.EntryTargets, b.Start)
		}
		sort.Slice(g.EntryTargets, func(i, j int) bool { return g.EntryTargets[i] < g.EntryTargets[j] })
	}
	return g
}

// recoverFunc linearly decodes one function extent and structures it
// into basic blocks. The linear walk is sound on AVR: instruction
// streams are word-aligned and cannot overlap within a function the
// assembler emitted.
func recoverFunc(img []byte, b core.Block, entries map[uint32]bool, regionStart, regionEnd uint32) (*Func, []Finding) {
	fn := &Func{Name: b.Name, Start: b.Start, End: b.End()}
	var findings []Finding
	startW, endW := b.Start/2, b.End()/2

	callSeen := make(map[uint32]bool)
	addCall := func(t uint32) {
		if !callSeen[t] {
			callSeen[t] = true
			fn.Calls = append(fn.Calls, t)
		}
	}
	// checkTarget validates one direct edge target (byte address) and
	// classifies cross-function destinations.
	checkTarget := func(pc uint32, t uint32, isCall bool) {
		switch {
		case t >= regionEnd || int(t) >= len(img):
			findings = append(findings, Finding{
				Kind: KindDanglingEdge, Severity: SevError, Addr: pc * 2, Block: b.Name,
				Detail: fmt.Sprintf("transfer target 0x%X is outside the code region", t),
			})
			return
		case avr.DecodeAt(img, t/2).Op == avr.OpInvalid:
			findings = append(findings, Finding{
				Kind: KindDanglingEdge, Severity: SevError, Addr: pc * 2, Block: b.Name,
				Detail: fmt.Sprintf("transfer target 0x%X does not decode", t),
			})
			return
		}
		if t >= b.Start && t < b.End() {
			return // intra-function edge
		}
		if entries[t] || t < regionStart {
			addCall(t) // direct call, or tail transfer, to an entry
			return
		}
		sev, detail := SevWarn, fmt.Sprintf("jump into function interior at 0x%X", t)
		if isCall {
			detail = fmt.Sprintf("call into function interior at 0x%X", t)
		}
		findings = append(findings, Finding{
			Kind: KindInteriorTarget, Severity: sev, Addr: pc * 2, Block: b.Name, Detail: detail,
		})
	}

	// checkExtended flags EIND-extended indirect transfers on images
	// whose code extends past what a 16-bit Z word address reaches: the
	// eijmp/eicall target then depends on EIND, which the entry-target
	// over-approximation does not model, so the target set would be
	// silently truncated unless it surfaces as a finding. Plain
	// ijmp/icall stay clean — they reach only the low 128 KiB, so the
	// entry-target set merely over-approximates them.
	checkExtended := func(pc uint32, op avr.Op) {
		if op != avr.OpEIJMP && op != avr.OpEICALL {
			return
		}
		if len(img) <= zReachBytes {
			return
		}
		findings = append(findings, Finding{
			Kind: KindDanglingEdge, Severity: SevWarn, Addr: pc * 2, Block: b.Name,
			Detail: "image exceeds 128 KiB: " + op.String() +
				" target depends on EIND, which the entry-target approximation does not model",
		})
	}

	// relWrap reports a relative transfer whose computed target leaves
	// addressable flash: the hardware would wrap the program counter
	// around the flash boundary, which no assembler-emitted
	// intra-image transfer does. Reported explicitly instead of letting
	// the uint32 conversion silently alias a wrapped address.
	relWrap := func(pc uint32, k int) {
		findings = append(findings, Finding{
			Kind: KindDanglingEdge, Severity: SevError, Addr: pc * 2, Block: b.Name,
			Detail: fmt.Sprintf("relative transfer offset %+d words wraps around the flash boundary", k),
		})
	}

	// Pass 1: decode linearly, collecting leaders and edges.
	leaders := map[uint32]bool{startW: true}
	leaderList := []uint32{startW}
	addLeader := func(w uint32) {
		if !leaders[w] {
			leaders[w] = true
			leaderList = append(leaderList, w)
		}
	}
	type decoded struct {
		in   avr.Instr
		next uint32 // word address after the instruction
	}
	instrs := make(map[uint32]decoded)
	truncated := uint32(0) // word address where decoding stopped, 0 = clean
	for pc := startW; pc < endW; {
		in := avr.DecodeAt(img, pc)
		fn.Instrs++
		if in.Op == avr.OpInvalid {
			findings = append(findings, Finding{
				Kind: KindUndecodable, Severity: SevError, Addr: pc * 2, Block: b.Name,
				Detail: "invalid opcode inside function body; CFG truncated here",
			})
			truncated = pc
			break
		}
		next := pc + uint32(in.Words)
		if next > endW {
			findings = append(findings, Finding{
				Kind: KindUndecodable, Severity: SevError, Addr: pc * 2, Block: b.Name,
				Detail: "two-word instruction overruns the function extent",
			})
			truncated = pc
			break
		}
		instrs[pc] = decoded{in: in, next: next}

		switch in.Op {
		case avr.OpBRBS, avr.OpBRBC, avr.OpRJMP:
			addLeader(next)
			t, ok := relTarget(pc, in.K)
			switch {
			case !ok:
				relWrap(pc, in.K)
			case t >= startW && t < endW:
				addLeader(t)
			default:
				checkTarget(pc, t*2, false)
			}
		case avr.OpJMP:
			addLeader(next)
			if in.Target >= startW && in.Target < endW {
				addLeader(in.Target)
			} else {
				checkTarget(pc, in.Target*2, false)
			}
		case avr.OpCALL:
			checkTarget(pc, in.Target*2, true)
		case avr.OpRCALL:
			if t, ok := relTarget(pc, in.K); ok {
				checkTarget(pc, t*2, true)
			} else {
				relWrap(pc, in.K)
			}
		case avr.OpRET, avr.OpRETI:
			addLeader(next)
		case avr.OpIJMP, avr.OpEIJMP:
			fn.IndirectSites++
			checkExtended(pc, in.Op)
			addLeader(next)
		case avr.OpICALL, avr.OpEICALL:
			fn.IndirectSites++
			checkExtended(pc, in.Op)
		case avr.OpCPSE, avr.OpSBRC, avr.OpSBRS, avr.OpSBIC, avr.OpSBIS:
			skip := next + uint32(avr.InstrWords(wordAt(img, next)))
			addLeader(next)
			if skip <= endW {
				addLeader(skip)
			}
		case avr.OpSPM:
			fn.HasSPM = true
			findings = append(findings, Finding{
				Kind: KindUnverifiableSPM, Severity: SevError, Addr: pc * 2, Block: b.Name,
				Detail: "function contains spm: self-modifying flash region is statically unverifiable",
			})
		}
		pc = next
	}

	// Pass 2: cut basic blocks at leaders and terminators.
	var starts []uint32
	for _, w := range leaderList {
		if w < endW && (truncated == 0 || w <= truncated) {
			starts = append(starts, w)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for i, lw := range starts {
		limit := endW
		if i+1 < len(starts) {
			limit = starts[i+1]
		}
		bb := BasicBlock{Start: lw * 2, Term: TermFall}
		pc := lw
		for pc < limit {
			d, ok := instrs[pc]
			if !ok { // decoding stopped here (invalid/overrun)
				bb.Term = TermStop
				pc = limit
				break
			}
			in := d.in
			pc = d.next
			stop := true
			switch in.Op {
			case avr.OpRET, avr.OpRETI:
				bb.Term = TermRet
			case avr.OpJMP:
				bb.Term = TermJump
				if in.Target >= startW && in.Target < endW {
					bb.Succs = append(bb.Succs, in.Target*2)
				}
			case avr.OpRJMP:
				bb.Term = TermJump
				if t, ok := relTarget(pc-uint32(in.Words), in.K); ok && t >= startW && t < endW {
					bb.Succs = append(bb.Succs, t*2)
				}
			case avr.OpBRBS, avr.OpBRBC:
				bb.Term = TermBranch
				bb.Succs = append(bb.Succs, pc*2)
				if t, ok := relTarget(pc-uint32(in.Words), in.K); ok && t >= startW && t < endW {
					bb.Succs = append(bb.Succs, t*2)
				}
			case avr.OpIJMP, avr.OpEIJMP:
				bb.Term = TermIndirect
			case avr.OpCPSE, avr.OpSBRC, avr.OpSBRS, avr.OpSBIC, avr.OpSBIS:
				bb.Term = TermSkip
				bb.Succs = append(bb.Succs, pc*2)
				if skip := pc + uint32(avr.InstrWords(wordAt(img, pc))); skip <= endW {
					bb.Succs = append(bb.Succs, skip*2)
				}
			default:
				stop = false
			}
			if stop {
				break
			}
		}
		bb.End = pc * 2
		if bb.Term == TermFall && pc < endW {
			bb.Succs = append(bb.Succs, pc*2)
		}
		fn.Blocks = append(fn.Blocks, bb)
	}
	if n := len(fn.Blocks); n > 0 && fn.Blocks[n-1].Term == TermFall {
		findings = append(findings, Finding{
			Kind: KindDanglingEdge, Severity: SevWarn, Addr: fn.Blocks[n-1].End, Block: b.Name,
			Detail: "execution falls through the end of the function",
		})
	}

	sort.Slice(fn.Calls, func(i, j int) bool { return fn.Calls[i] < fn.Calls[j] })
	return fn, findings
}

// BasicBlockCount sums basic blocks across all functions.
func (g *Graph) BasicBlockCount() int {
	n := 0
	for _, f := range g.Funcs {
		n += len(f.Blocks)
	}
	return n
}

// CallEdgeCount sums direct call-graph edges.
func (g *Graph) CallEdgeCount() int {
	n := 0
	for _, f := range g.Funcs {
		n += len(f.Calls)
	}
	return n
}

// IndirectSiteCount sums icall/ijmp sites.
func (g *Graph) IndirectSiteCount() int {
	n := 0
	for _, f := range g.Funcs {
		n += f.IndirectSites
	}
	return n
}

// zReachBytes is how much flash a 16-bit Z word address reaches:
// ijmp/icall (and eijmp/eicall with EIND zero) land in the low 128 KiB.
const zReachBytes = 0x20000

// relTarget computes the word target of a relative transfer at word
// address pc with word offset k. ok is false when the target leaves
// addressable flash — the encoding wrapped around the flash boundary.
func relTarget(pc uint32, k int) (uint32, bool) {
	t := int64(pc) + 1 + int64(k)
	if t < 0 || t >= int64(avr.FlashWords) {
		return 0, false
	}
	return uint32(t), true
}

func wordAt(img []byte, w uint32) uint16 {
	i := int(w) * 2
	if i+1 >= len(img) {
		return 0xFFFF
	}
	return uint16(img[i]) | uint16(img[i+1])<<8
}
