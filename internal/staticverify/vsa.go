package staticverify

import (
	"fmt"
	"sort"

	"mavr/internal/core"
	"mavr/internal/staticverify/vsa"
)

// VSAInfo summarizes the value-set analysis of one verified image: what
// the abstract interpreter proved about every indirect control transfer
// and every function's stack discipline.
type VSAInfo struct {
	// Sites lists every indirect transfer, sorted by address.
	Sites []VSASite `json:"sites,omitempty"`
	// ResolvedSites counts sites whose target pointer was proven to
	// come from an enumerable source; TotalSites counts all of them.
	ResolvedSites int `json:"resolved_sites"`
	TotalSites    int `json:"total_sites"`
	// EntryTargets is the size of the CFG's indirect-edge
	// over-approximation — the fallback target set an unresolved site
	// keeps.
	EntryTargets int `json:"entry_targets"`
	// MaxTargets is the largest proven target set across resolved sites.
	MaxTargets int `json:"max_targets"`
	// StackProven counts functions whose push/pop and call/ret balance
	// was proven on every path; StackFuncs counts analyzed (non-SPM)
	// functions.
	StackProven int `json:"stack_proven"`
	StackFuncs  int `json:"stack_funcs"`
}

// VSASite is one indirect transfer in the verified image.
type VSASite struct {
	Addr     uint32 `json:"addr"`
	Block    string `json:"block,omitempty"`
	Op       string `json:"op"`
	Call     bool   `json:"call"`
	Resolved bool   `json:"resolved"`
	// Targets is the proven target set (byte addresses), nil when the
	// site is unresolved and falls back to the entry-target
	// over-approximation.
	Targets []uint32 `json:"targets,omitempty"`
	// EntrySubset: every proven target is a member of the CFG's
	// entry-target set (the site cannot reach a function interior).
	EntrySubset bool `json:"entry_subset"`
}

// vsaInput mirrors a recovered graph into the analysis package's
// neutral types. The table and patched-offset lists come from the
// preprocessed base and are layout invariants: the pointer patcher
// rewrites table words in place, at the same flash offsets, in every
// permutation.
func vsaInput(img []byte, g *Graph, pre *core.Preprocessed) *vsa.Input {
	in := &vsa.Input{
		Img:         img,
		RegionStart: g.RegionStart,
		RegionEnd:   g.RegionEnd,
		Patched:     pre.PtrOffsets,
	}
	for _, t := range pre.PtrTables {
		in.Tables = append(in.Tables, vsa.Table{DataAddr: t.DataAddr, FlashOff: t.FlashOff, Words: t.Words})
	}
	for _, f := range g.Funcs {
		vf := vsa.Func{Name: f.Name, Start: f.Start, End: f.End, HasSPM: f.HasSPM}
		for _, b := range f.Blocks {
			vf.Blocks = append(vf.Blocks, vsa.Block{Start: b.Start, End: b.End, Succs: b.Succs})
		}
		in.Funcs = append(in.Funcs, vf)
	}
	return in
}

// vsaLayout positions a (possibly translated) analysis result in one
// concrete image: per analyzed function its name and absolute start —
// in the analysis' function order — plus the image to concretize table
// reads against and that image's sorted entry-target set.
type vsaLayout struct {
	img     []byte
	name    func(i int) string
	start   func(i int) uint32
	entries []uint32
}

// graphLayout is the layout of an analysis run directly on the image a
// graph was recovered from.
func graphLayout(img []byte, g *Graph) vsaLayout {
	return vsaLayout{
		img:     img,
		name:    func(i int) string { return g.Funcs[i].Name },
		start:   func(i int) uint32 { return g.Funcs[i].Start },
		entries: g.EntryTargets,
	}
}

// renderVSA renders an analysis result against a layout, producing the
// report section, the findings to merge, and whether the residual
// gadget audit may demote in-region stable gadgets: true exactly when
// every indirect site resolved and every proven target is a legitimate
// entry, i.e. no abstractly-reachable indirect edge lands anywhere a
// gadget could start. It is shared by the stateless Verify and the
// cached Base.Verify; report equality between the two depends on it.
func renderVSA(res *vsa.Result, lay vsaLayout) (*VSAInfo, []Finding, bool) {
	info := &VSAInfo{EntryTargets: len(lay.entries)}
	var fs []Finding

	for i, fr := range res.Funcs {
		if fr.Skipped {
			continue
		}
		info.StackFuncs++
		if fr.StackProven {
			info.StackProven++
		}
		for _, f := range fr.Findings {
			fs = append(fs, Finding{
				Kind:     vsaFindingKind(f.Kind),
				Severity: vsaFindingSeverity(f.Kind),
				Addr:     lay.start(i) + f.Off,
				Block:    lay.name(i),
				Detail:   f.Detail,
			})
		}
	}

	entrySet := make(map[uint32]bool, len(lay.entries))
	for _, e := range lay.entries {
		entrySet[e] = true
	}
	demote := true
	for si := range res.Sites {
		s := &res.Sites[si]
		addr := lay.start(s.FuncIdx) + s.Off
		vs := VSASite{
			Addr:     addr,
			Block:    lay.name(s.FuncIdx),
			Op:       s.Op.String(),
			Call:     s.Call,
			Resolved: s.Resolved,
		}
		if s.Resolved {
			vs.Targets = s.Targets(lay.img)
			vs.EntrySubset = true
			for _, t := range vs.Targets {
				if !entrySet[t] {
					vs.EntrySubset = false
					demote = false
					break
				}
			}
			info.ResolvedSites++
			if len(vs.Targets) > info.MaxTargets {
				info.MaxTargets = len(vs.Targets)
			}
		} else {
			demote = false
			fs = append(fs, Finding{
				Kind: KindIndirectUnresolved, Severity: SevInfo, Addr: addr, Block: vs.Block,
				Detail: fmt.Sprintf("%s target pointer not statically bounded; over-approximated to %d entry targets",
					vs.Op, len(lay.entries)),
			})
		}
		info.TotalSites++
		info.Sites = append(info.Sites, vs)
	}
	sort.Slice(info.Sites, func(i, j int) bool { return info.Sites[i].Addr < info.Sites[j].Addr })
	return info, fs, demote
}

// vsaFindingKind maps analysis finding kinds onto report kinds.
func vsaFindingKind(kind string) Kind {
	switch kind {
	case vsa.KindStackUnproven:
		return KindStackUnproven
	case vsa.KindSPEscape:
		return KindSPEscape
	default: // ret-imbalance, stack-underflow
		return KindStackViolation
	}
}

// vsaFindingSeverity ranks analysis findings: a disproved property is a
// warning, an unprovable one is informational (the dynamic monitor
// still covers it).
func vsaFindingSeverity(kind string) Severity {
	if kind == vsa.KindStackUnproven {
		return SevInfo
	}
	return SevWarn
}
