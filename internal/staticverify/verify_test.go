package staticverify_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"mavr/internal/avr"
	"mavr/internal/core"
	"mavr/internal/firmware"
	"mavr/internal/staticverify"
)

func genPre(t *testing.T) *core.Preprocessed {
	t.Helper()
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	return pre
}

func randomize(t *testing.T, pre *core.Preprocessed, seed int64) *core.Randomized {
	t.Helper()
	r, err := core.Randomize(pre, core.Permutation(rand.New(rand.NewSource(seed)), len(pre.Blocks)))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// A clean randomization must verify with zero errors across seeds: the
// rewriter's output is provably patch-complete.
func TestCleanRandomizationPasses(t *testing.T) {
	pre := genPre(t)
	for seed := int64(1); seed <= 4; seed++ {
		r := randomize(t, pre, seed)
		rep := staticverify.Verify(pre, r, staticverify.DefaultOptions())
		if !rep.OK() {
			for _, f := range rep.Findings {
				if f.Severity == staticverify.SevError {
					t.Errorf("seed %d: unexpected error finding: %s", seed, f)
				}
			}
		}
		if rep.Diff.TransfersChecked == 0 || rep.Diff.VectorsChecked == 0 || rep.Diff.PointersChecked == 0 {
			t.Fatalf("seed %d: diff proved nothing: %+v", seed, rep.Diff)
		}
		if rep.Diff.PointersChecked != len(pre.PtrOffsets) {
			t.Fatalf("seed %d: checked %d pointers, want %d", seed, rep.Diff.PointersChecked, len(pre.PtrOffsets))
		}
		if rep.CFG.Funcs != len(pre.Blocks) {
			t.Fatalf("seed %d: CFG has %d funcs, want %d", seed, rep.CFG.Funcs, len(pre.Blocks))
		}
	}
}

// The identity permutation moves nothing; the patch-completeness diff
// of an image against itself must report zero findings.
func TestIdentityDiffZeroFindings(t *testing.T) {
	pre := genPre(t)
	ident := make([]int, len(pre.Blocks))
	for i := range ident {
		ident[i] = i
	}
	r, err := core.Randomize(pre, ident)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Image, pre.Image) {
		t.Fatal("identity permutation changed the image")
	}
	findings, st := staticverify.VerifyPatches(pre, r)
	if len(findings) != 0 {
		t.Fatalf("identity diff produced findings: %v", findings)
	}
	if st.TransfersChecked == 0 {
		t.Fatal("identity diff checked no transfers")
	}
}

// A deliberately skipped patch — one call left aiming at the old
// address — must be flagged as an error.
func TestSkippedPatchFlagged(t *testing.T) {
	pre := genPre(t)
	r := randomize(t, pre, 2)

	// Pick a patched transfer inside the shuffled region (the first few
	// are vector entries).
	var addr uint32
	n := 0
	for {
		a, err := staticverify.RevertPatch(pre, r, n)
		if err != nil {
			t.Fatal("no patched transfer inside the shuffled region")
		}
		if a >= pre.RegionStart {
			addr = a
			break
		}
		// Undo the trial revert by re-randomizing and trying the next.
		r = randomize(t, pre, 2)
		n++
	}

	rep := staticverify.Verify(pre, r, staticverify.Options{})
	if rep.OK() {
		t.Fatal("verifier passed an image with an unpatched transfer")
	}
	found := false
	for _, f := range rep.Findings {
		if f.Kind == staticverify.KindUnpatchedTransfer && f.Addr == addr {
			found = true
		}
	}
	if !found {
		t.Fatalf("no unpatched-transfer finding at 0x%X; findings: %v", addr, rep.Findings)
	}
}

// A vector-table entry left pointing into the pre-randomization layout
// must be flagged with the vector kind: it fires on the next interrupt.
func TestUnpatchedVectorFlagged(t *testing.T) {
	pre := genPre(t)
	r := randomize(t, pre, 3)

	// The reset vector (vector 0) targets __init, which certainly moved.
	in := avr.DecodeAt(pre.Image, 0)
	if in.Op != avr.OpJMP {
		t.Fatalf("vector 0 is %s, want jmp", in.Op)
	}
	rin := avr.DecodeAt(r.Image, 0)
	if rin.Target == in.Target {
		t.Skip("reset target did not move under this seed")
	}
	addr, err := staticverify.RevertPatch(pre, r, 0)
	if err != nil || addr != 0 {
		t.Fatalf("RevertPatch(0) = 0x%X, %v; want the reset vector", addr, err)
	}

	rep := staticverify.Verify(pre, r, staticverify.Options{})
	found := false
	for _, f := range rep.Findings {
		if f.Kind == staticverify.KindUnpatchedVector && f.Addr == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no unpatched-vector finding; findings: %v", rep.Findings)
	}
}

// An unreverted data-section function pointer must be flagged.
func TestUnpatchedPointerFlagged(t *testing.T) {
	pre := genPre(t)
	r := randomize(t, pre, 4)
	off, err := staticverify.RevertPointerPatch(pre, r, 0)
	if err != nil {
		t.Skip("no pointer moved under this seed")
	}
	rep := staticverify.Verify(pre, r, staticverify.Options{})
	found := false
	for _, f := range rep.Findings {
		if f.Kind == staticverify.KindUnpatchedPointer && f.Addr == off {
			found = true
		}
	}
	if !found {
		t.Fatalf("no unpatched-pointer finding at 0x%X; findings: %v", off, rep.Findings)
	}
}

// A function containing spm is self-modifying: the verifier must report
// it unverifiable, never silently pass it.
func TestSPMRegionUnverifiable(t *testing.T) {
	pre := genPre(t)
	r := randomize(t, pre, 5)

	// Replace a one-word straight-line instruction inside some block
	// with spm, in both images at corresponding locations, so the
	// streams still match and only the spm rule can fire.
	const spmWord = 0x95E8
	remapped := func(old uint32) uint32 {
		i := pre.BlockIndex(old)
		return r.NewStart[i] + (old - pre.Blocks[i].Start)
	}
	var spmAddr uint32
	b := pre.Blocks[len(pre.Blocks)/2]
	for pc := b.Start / 2; pc < b.End()/2; {
		in := avr.DecodeAt(pre.Image, pc)
		if in.Words == 1 && !in.IsCallOrJump() &&
			in.Op != avr.OpBRBS && in.Op != avr.OpBRBC && in.Op != avr.OpRET {
			old := pc * 2
			nw := remapped(old)
			pre.Image[old], pre.Image[old+1] = byte(spmWord&0xFF), byte(spmWord>>8)
			r.Image[nw], r.Image[nw+1] = byte(spmWord&0xFF), byte(spmWord>>8)
			spmAddr = nw
			break
		}
		pc += uint32(in.Words)
	}
	if spmAddr == 0 {
		t.Fatal("found no instruction to replace with spm")
	}

	rep := staticverify.Verify(pre, r, staticverify.Options{})
	if rep.OK() {
		t.Fatal("verifier passed a self-modifying image")
	}
	found := false
	for _, f := range rep.Findings {
		if f.Kind == staticverify.KindUnverifiableSPM && f.Addr == spmAddr {
			found = true
		}
	}
	if !found {
		t.Fatalf("no spm-unverifiable finding at 0x%X; findings: %v", spmAddr, rep.Findings)
	}
}

// Corrupting a non-transfer instruction must surface as an
// opcode-mismatch, not silently pass or panic.
func TestStreamDivergenceFlagged(t *testing.T) {
	pre := genPre(t)
	r := randomize(t, pre, 6)
	// Flip a bit in the middle of some relocated block.
	i := len(pre.Blocks) / 3
	off := r.NewStart[i] + pre.Blocks[i].Size/2&^1
	r.Image[off] ^= 0x10
	rep := staticverify.Verify(pre, r, staticverify.Options{})
	if rep.OK() {
		t.Fatal("verifier passed a corrupted image")
	}
}

// The gadget audit: under the identity permutation every gadget is
// stable; under a real permutation the in-region survivors shrink to
// (at most) the fixed points of the permutation.
func TestGadgetAudit(t *testing.T) {
	pre := genPre(t)
	ident := make([]int, len(pre.Blocks))
	for i := range ident {
		ident[i] = i
	}
	rid, err := core.Randomize(pre, ident)
	if err != nil {
		t.Fatal(err)
	}
	audit, findings := staticverify.AuditGadgets(pre, rid, 24)
	if audit.Orig == 0 || audit.Stable != audit.Orig {
		t.Fatalf("identity: %d/%d gadgets stable, want all", audit.Stable, audit.Orig)
	}
	if len(findings) == 0 {
		t.Fatal("identity: no stable-gadget findings")
	}

	r := randomize(t, pre, 7)
	moved, _ := staticverify.AuditGadgets(pre, r, 24)
	if moved.StableInRegion >= audit.StableInRegion/2 {
		t.Fatalf("randomization left %d of %d in-region gadgets stable", moved.StableInRegion, audit.StableInRegion)
	}
}

// Reports must round-trip through the JSON reporter.
func TestReportJSON(t *testing.T) {
	pre := genPre(t)
	r := randomize(t, pre, 8)
	rep := staticverify.Verify(pre, r, staticverify.DefaultOptions())
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"blocks", "cfg", "diff", "findings"} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("JSON report missing %q: %s", key, buf.String())
		}
	}
	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(text.Bytes(), []byte("diff:")) {
		t.Fatalf("text report malformed: %s", text.String())
	}
}

// The report is a pure function of its inputs: two verifications of
// the same outcome with every analysis enabled render byte-identical
// JSON, and the findings come out in the documented total order
// (severity, then address, then kind). This is the regression gate for
// report determinism — map iteration or unsorted appends anywhere in
// the pipeline break it.
func TestReportDeterministicAndSorted(t *testing.T) {
	pre := genPre(t)
	r := randomize(t, pre, 3)
	opts := staticverify.DefaultOptions()
	opts.VSA = true

	render := func() []byte {
		var buf bytes.Buffer
		if err := staticverify.Verify(pre, r, opts).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first, second := render(), render()
	if !bytes.Equal(first, second) {
		t.Fatal("two verifications of the same outcome rendered different reports")
	}

	// A clean testapp report can be finding-free; revert two patches so
	// the order check sees a mixed-severity list.
	r2 := randomize(t, pre, 3)
	if _, err := staticverify.RevertPatch(pre, r2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := staticverify.RevertPointerPatch(pre, r2, 0); err != nil {
		t.Fatal(err)
	}
	rep := staticverify.Verify(pre, r2, opts)
	if len(rep.Findings) < 2 {
		t.Fatalf("fault injection produced %d findings, want several", len(rep.Findings))
	}
	rank := map[staticverify.Severity]int{
		staticverify.SevError: 0, staticverify.SevWarn: 1, staticverify.SevInfo: 2,
	}
	for i := 1; i < len(rep.Findings); i++ {
		a, b := rep.Findings[i-1], rep.Findings[i]
		switch {
		case rank[a.Severity] < rank[b.Severity]:
		case rank[a.Severity] > rank[b.Severity]:
			t.Fatalf("finding %d (%s) sorted after less severe %s", i, b, a)
		case a.Addr > b.Addr:
			t.Fatalf("findings %d,%d out of address order: 0x%X after 0x%X", i-1, i, b.Addr, a.Addr)
		case a.Addr == b.Addr && a.Kind > b.Kind:
			t.Fatalf("findings %d,%d out of kind order at 0x%X: %s after %s", i-1, i, a.Addr, b.Kind, a.Kind)
		}
	}
}
