package staticverify

import (
	"bytes"
	"fmt"

	"mavr/internal/core"
	"mavr/internal/gadget"
)

// GadgetAudit is the residual-gadget-surface comparison of one
// randomization outcome.
type GadgetAudit struct {
	// Orig and Rand count gadgets found in each image.
	Orig int `json:"orig"`
	Rand int `json:"rand"`
	// Stable counts gadgets present at the same address with identical
	// bytes in both images — the stable-gadget condition the paper's
	// V1–V3 attacks need.
	Stable int `json:"stable"`
	// StableInRegion counts the stable survivors inside the shuffled
	// function region (rewriter-relevant); the rest live in fixed
	// regions (vectors, stubs, data/calibration) and are invariants of
	// the firmware itself.
	StableInRegion int `json:"stable_in_region"`
}

// maxStableFindings caps per-address stable-gadget findings so an
// identity permutation (everything stable) stays readable.
const maxStableFindings = 25

// AuditGadgets scans both images for ret-terminated gadget sequences
// and reports which addresses survive randomization unchanged.
// Survivors inside the shuffled region are per-address warnings;
// fixed-region survivors are summarized in one info finding.
func AuditGadgets(pre *core.Preprocessed, r *core.Randomized, maxWords int) (GadgetAudit, []Finding) {
	origGs := gadget.Scan(pre.Image, maxWords)
	return auditGadgetsAgainst(pre, r, maxWords, origGs, gadgetIndex(origGs), false)
}

// gadgetIndex maps a scan result by gadget start address.
func gadgetIndex(gs []*gadget.Gadget) map[uint32]*gadget.Gadget {
	at := make(map[uint32]*gadget.Gadget, len(gs))
	for _, g := range gs {
		at[g.Addr] = g
	}
	return at
}

// auditGadgetsAgainst is AuditGadgets with the original-image scan
// supplied by the caller, so a cached Base can amortize it across many
// permutations of the same base image. It must stay the single
// implementation both entry points share: report equality between the
// cached and fresh paths depends on it.
//
// demote re-ranks in-region stable-gadget findings from warning to
// info. The caller sets it when value-set analysis proved every
// indirect site resolves to legitimate entries: no
// attacker-influencable indirect edge can land on a gadget, so a
// stable gadget's reachability depends on a separately-mitigated
// stack-corruption primitive and is informational, not a rewriter
// defect.
func auditGadgetsAgainst(pre *core.Preprocessed, r *core.Randomized, maxWords int, origGs []*gadget.Gadget, origAt map[uint32]*gadget.Gadget, demote bool) (GadgetAudit, []Finding) {
	var audit GadgetAudit
	var findings []Finding

	stableSev := SevWarn
	stableSuffix := ""
	if demote {
		stableSev = SevInfo
		stableSuffix = "; unreachable from any resolved indirect edge"
	}
	randGs := gadget.Scan(r.Image, maxWords)
	audit.Orig, audit.Rand = len(origGs), len(randGs)
	fixedStable := 0
	emitted := 0
	for _, g := range randGs {
		og, ok := origAt[g.Addr]
		if !ok {
			continue
		}
		lo, hi := int(g.Addr)*2, (int(g.Addr)+g.Words())*2
		if hi > len(r.Image) || og.Words() != g.Words() ||
			!bytes.Equal(pre.Image[lo:hi], r.Image[lo:hi]) {
			continue
		}
		audit.Stable++
		byteAddr := g.Addr * 2
		if byteAddr >= pre.RegionStart && byteAddr < pre.RegionEnd {
			audit.StableInRegion++
			if emitted < maxStableFindings {
				emitted++
				findings = append(findings, Finding{
					Kind: KindStableGadget, Severity: stableSev, Addr: byteAddr,
					Detail: fmt.Sprintf("%s gadget (%d instrs) survives randomization unchanged inside the shuffled region%s",
						g.Kind, len(g.Instrs), stableSuffix),
				})
			}
		} else {
			fixedStable++
		}
	}
	if over := audit.StableInRegion - emitted; over > 0 {
		findings = append(findings, Finding{
			Kind: KindStableGadget, Severity: stableSev,
			Detail: fmt.Sprintf("... and %d more stable gadgets in the shuffled region", over),
		})
	}
	if fixedStable > 0 {
		findings = append(findings, Finding{
			Kind: KindStableGadget, Severity: SevInfo,
			Detail: fmt.Sprintf("%d gadgets in fixed regions (vectors/stubs/data/calibration) survive every randomization; they are firmware invariants, not rewriter defects", fixedStable),
		})
	}
	return audit, findings
}
