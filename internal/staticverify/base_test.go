package staticverify

import (
	"bytes"
	"math/rand"
	"testing"

	"mavr/internal/core"
	"mavr/internal/firmware"
)

func reportBytes(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// requireSameReport asserts the cached and fresh verification paths
// produced byte-identical reports (JSON and text renderings).
func requireSameReport(t *testing.T, fresh, cached *Report, ctx string) {
	t.Helper()
	fb, cb := reportBytes(t, fresh), reportBytes(t, cached)
	if !bytes.Equal(fb, cb) {
		t.Fatalf("%s: cached report diverges from fresh\nfresh:\n%s\ncached:\n%s", ctx, fb, cb)
	}
}

// TestBaseVerifyMatchesFresh proves the cached-handle equivalence
// contract on clean randomizations: NewBase(pre, opts).Verify(r) must
// be byte-identical to Verify(pre, r, opts), across seeds and with the
// gadget audit both off and on, and must resolve via the fast path.
func TestBaseVerifyMatchesFresh(t *testing.T) {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{{}, DefaultOptions()} {
		base := NewBase(pre, opts)
		for seed := int64(1); seed <= 5; seed++ {
			r, err := core.Randomize(pre, core.Permutation(rand.New(rand.NewSource(seed)), len(pre.Blocks)))
			if err != nil {
				t.Fatal(err)
			}
			fresh := Verify(pre, r, opts)
			cached := base.Verify(r)
			if !fresh.OK() {
				t.Fatalf("seed %d: fresh verification unexpectedly failed", seed)
			}
			requireSameReport(t, fresh, cached, "clean outcome")
		}
		st := base.Stats()
		if st.FastVerifies != 5 || st.FallbackVerifies != 0 {
			t.Fatalf("opts %+v: want 5 fast / 0 fallback verifies, got %+v", opts, st)
		}
	}
}

// TestBaseVerifyFallbackMatchesFresh injects every rewriter-defect
// class the diff must catch and proves the cached handle still returns
// exactly the fresh report (via its fallback path) — defects never get
// a different (or rosier) report because a cache was involved.
func TestBaseVerifyFallbackMatchesFresh(t *testing.T) {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed int64) *core.Randomized {
		r, err := core.Randomize(pre, core.Permutation(rand.New(rand.NewSource(seed)), len(pre.Blocks)))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cases := []struct {
		name   string
		tamper func(r *core.Randomized)
	}{
		{"unpatched transfer", func(r *core.Randomized) {
			if _, err := RevertPatch(pre, r, 3); err != nil {
				t.Fatal(err)
			}
		}},
		{"unpatched pointer", func(r *core.Randomized) {
			if _, err := RevertPointerPatch(pre, r, 0); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupted non-transfer word", func(r *core.Randomized) {
			// Flip a byte in the middle of the shuffled region; if it
			// happens to land on a transfer the diff still catches it.
			r.Image[(pre.RegionStart+pre.RegionEnd)/2] ^= 0x55
		}},
		{"truncated image", func(r *core.Randomized) {
			r.Image = r.Image[:len(r.Image)-2]
		}},
	}
	base := NewBase(pre, DefaultOptions())
	for _, tc := range cases {
		r := mk(7)
		tc.tamper(r)
		fresh := Verify(pre, r, DefaultOptions())
		cached := base.Verify(r)
		if fresh.OK() {
			t.Fatalf("%s: fresh verification missed the injected defect", tc.name)
		}
		requireSameReport(t, fresh, cached, tc.name)
	}
	if st := base.Stats(); st.FallbackVerifies != uint64(len(cases)) {
		t.Fatalf("want %d fallback verifies, got %+v", len(cases), st)
	}
}

// TestBaseVerifyMatchesFreshArduplane runs one full-scale equivalence
// check on the ArduPlane-sized profile — the image the armory and the
// benchmarks exercise.
func TestBaseVerifyMatchesFreshArduplane(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale image in -short mode")
	}
	img, err := firmware.Generate(firmware.Arduplane(), firmware.ModeMAVR)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.Randomize(pre, core.Permutation(rand.New(rand.NewSource(1)), len(pre.Blocks)))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{} // the pre-flash gate configuration the master uses
	base := NewBase(pre, opts)
	requireSameReport(t, Verify(pre, r, opts), base.Verify(r), "arduplane")
	if st := base.Stats(); st.FastVerifies != 1 {
		t.Fatalf("want fast path, got %+v", st)
	}
}
