// Differential soundness oracle for the value-set analysis: replay the
// golden scenarios on the instruction-level emulator, record every
// concretely executed indirect control transfer, and assert that each
// one lands inside the abstract target set the analysis proved for its
// site. The scenarios cover benign flight, stealthy and crashing ROP
// attacks, chaos-impaired links and multi-epoch re-randomization, so a
// containment violation anywhere in the suite is direct evidence of an
// unsound transfer function or an unsound translation across layouts.
package staticverify_test

import (
	"bytes"
	"fmt"
	"testing"

	"mavr/internal/avr"
	"mavr/internal/board"
	"mavr/internal/core"
	"mavr/internal/firmware"
	"mavr/internal/scenario"
	"mavr/internal/staticverify"
)

// soundnessOracle accumulates the differential evidence for one
// scenario run: the current epoch's resolved site map and every
// transfer checked against it.
type soundnessOracle struct {
	t    *testing.T
	name string
	// sites maps each resolved indirect site (byte address of the
	// transfer instruction in the flashed image) to its proven target
	// set (byte addresses).
	sites      map[uint32]map[uint32]bool
	epoch      int
	checked    int
	violations []string
}

// setLayout installs one epoch's layout: it verifies the randomization
// outcome with VSA enabled and indexes the resolved sites. Wired to
// Master.Instrument on MAVR boards (one call per randomization epoch)
// and called once directly for stock-layout boards.
func (o *soundnessOracle) setLayout(pre *core.Preprocessed, r *core.Randomized) {
	rep := staticverify.Verify(pre, r, staticverify.Options{VSA: true})
	if !rep.OK() {
		o.t.Fatalf("%s: epoch %d: verification rejected the image: %s", o.name, o.epoch, rep.Findings[0])
	}
	if rep.VSA == nil {
		o.t.Fatalf("%s: epoch %d: report has no VSA section", o.name, o.epoch)
	}
	sites := make(map[uint32]map[uint32]bool)
	for _, s := range rep.VSA.Sites {
		if !s.Resolved {
			continue
		}
		set := make(map[uint32]bool, len(s.Targets))
		for _, tgt := range s.Targets {
			set[tgt] = true
		}
		sites[s.Addr] = set
	}
	o.sites = sites
	o.epoch++
}

// hook returns the OnStep tracer: every indirect transfer whose pc is a
// resolved site of the current epoch must target a member of its proven
// set. Transfers elsewhere (bootloader code, unresolved sites) are out
// of the analysis' claim and ignored.
func (o *soundnessOracle) hook(cpu *avr.CPU) func(pc uint32, in avr.Instr) {
	return func(pc uint32, in avr.Instr) {
		var word uint32
		switch in.Op {
		case avr.OpICALL, avr.OpIJMP:
			word = uint32(cpu.RegPair(avr.RegZL))
		case avr.OpEICALL, avr.OpEIJMP:
			word = uint32(cpu.Data[avr.IOBase+avr.IOAddrEIND]&1)<<16 | uint32(cpu.RegPair(avr.RegZL))
		default:
			return
		}
		targets, ok := o.sites[pc*2]
		if !ok {
			return
		}
		o.checked++
		if !targets[word*2] && len(o.violations) < 8 {
			o.violations = append(o.violations, fmt.Sprintf(
				"epoch %d: %s at 0x%X reached 0x%X, outside its proven target set (%d targets)",
				o.epoch, in.Op, pc*2, word*2, len(targets)))
		}
	}
}

// TestVSASoundnessGoldenScenarios replays all builtin golden scenarios
// with the oracle attached.
func TestVSASoundnessGoldenScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("replays every golden scenario on the interpreting emulator")
	}
	for _, spec := range scenario.Builtin() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			o := &soundnessOracle{t: t, name: spec.Name}

			if spec.Board == scenario.BoardUnprotected {
				// Stock-layout board: the flashed image is the original.
				// The identity permutation must reproduce it exactly, and
				// its analysis describes what actually executes.
				img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
				if err != nil {
					t.Fatal(err)
				}
				pre, err := core.Preprocess(img.ELF)
				if err != nil {
					t.Fatal(err)
				}
				perm := make([]int, len(pre.Blocks))
				for i := range perm {
					perm[i] = i
				}
				r, err := core.Randomize(pre, perm)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(r.Image, pre.Image) {
					t.Fatal("identity permutation did not reproduce the original image")
				}
				o.setLayout(pre, r)
			}

			spec.Observe = func(sys *board.System) {
				sys.App.CPU.OnStep = o.hook(sys.App.CPU)
				if sys.Master != nil {
					sys.Master.Instrument(o.setLayout)
				}
			}
			if _, err := scenario.Run(spec); err != nil {
				t.Fatal(err)
			}

			for _, v := range o.violations {
				t.Errorf("containment violation: %s", v)
			}
			if o.checked == 0 {
				t.Error("no indirect transfer at a resolved site executed; the oracle proved nothing")
			}
			t.Logf("%s: %d epochs, %d transfers checked", spec.Name, o.epoch, o.checked)
		})
	}
}
