package staticverify

import (
	"errors"
	"fmt"

	"mavr/internal/avr"
	"mavr/internal/core"
	"mavr/internal/firmware"
)

// DiffStats counts what the patch-completeness diff proved.
type DiffStats struct {
	// TransfersChecked counts direct jmp/call/rjmp/rcall/brbs/brbc
	// instructions whose targets were proven remapped.
	TransfersChecked int `json:"transfers_checked"`
	// VectorsChecked counts interrupt-vector entries proven remapped.
	VectorsChecked int `json:"vectors_checked"`
	// PointersChecked counts data-section function pointers proven
	// remapped.
	PointersChecked int `json:"pointers_checked"`
	// WordsCompared counts program words walked in lockstep.
	WordsCompared int `json:"words_compared"`
}

// remapper rebuilds the address mapping a randomization outcome
// applied: old byte address -> new byte address.
func remapper(pre *core.Preprocessed, r *core.Randomized) func(uint32) uint32 {
	return func(old uint32) uint32 {
		i := pre.BlockIndex(old)
		if i < 0 {
			return old
		}
		return r.NewStart[i] + (old - pre.Blocks[i].Start)
	}
}

// VerifyPatches proves patch-completeness of a randomization outcome:
// it walks the original and randomized images in lockstep and checks
// that every direct control transfer, vector entry and tabled function
// pointer was rewritten to exactly its relocated target — and that
// nothing else changed. The returned findings are empty iff the
// rewrite is provably complete and faithful.
func VerifyPatches(pre *core.Preprocessed, r *core.Randomized) ([]Finding, DiffStats) {
	var findings []Finding
	var st DiffStats
	if len(r.Image) != len(pre.Image) {
		return []Finding{{
			Kind: KindSizeMismatch, Severity: SevError,
			Detail: fmt.Sprintf("randomized image is %d bytes, original %d", len(r.Image), len(pre.Image)),
		}}, st
	}
	remap := remapper(pre, r)
	newStarts := make(map[uint32]bool, len(pre.Blocks))
	for i := range pre.Blocks {
		newStarts[r.NewStart[i]] = true
	}

	// The vector table occupies the first NumVectors two-word jmp slots;
	// defects there get their own kind since a missed vector entry fires
	// on the next interrupt, not the next call.
	vecEnd := uint32(firmware.NumVectors) * 4
	if vecEnd > pre.RegionStart {
		vecEnd = pre.RegionStart
	}

	// Fixed low-flash region: same location in both images, but targets
	// into moved blocks must be remapped.
	findings = append(findings, diffRange(pre.Image, r.Image, 0, 0, pre.RegionStart, "", vecEnd, remap, &st)...)

	// Every relocated block, walked at its old and new location.
	for i, b := range pre.Blocks {
		findings = append(findings,
			diffRange(pre.Image, r.Image, b.Start, r.NewStart[i], b.Size, b.Name, vecEnd, remap, &st)...)
	}

	// Data-section function pointers (16-bit word addresses).
	for _, off := range pre.PtrOffsets {
		if int(off)+1 >= len(pre.Image) {
			findings = append(findings, Finding{
				Kind: KindDanglingEdge, Severity: SevError, Addr: off,
				Detail: "function-pointer offset outside the image",
			})
			continue
		}
		st.PointersChecked++
		oldW := uint32(pre.Image[off]) | uint32(pre.Image[off+1])<<8
		newW := uint32(r.Image[off]) | uint32(r.Image[off+1])<<8
		want := remap(oldW*2) / 2
		if newW != want {
			findings = append(findings, Finding{
				Kind: KindUnpatchedPointer, Severity: SevError, Addr: off,
				Detail: fmt.Sprintf("pointer 0x%X should be 0x%X after relocation, found 0x%X",
					oldW*2, want*2, newW*2),
			})
			continue
		}
		if t := want * 2; !newStarts[t] && t >= pre.RegionStart {
			findings = append(findings, Finding{
				Kind: KindDanglingEdge, Severity: SevError, Addr: off,
				Detail: fmt.Sprintf("relocated pointer 0x%X is not a function entry", t),
			})
		}
	}

	// Vector entries must land on relocated function entries (or fixed
	// code) in the new layout.
	for pc := uint32(0); pc*2 < vecEnd; pc += 2 {
		in := avr.DecodeAt(r.Image, pc)
		if in.Op != avr.OpJMP {
			continue
		}
		st.VectorsChecked++
		if t := in.Target * 2; !newStarts[t] && t >= pre.RegionStart {
			findings = append(findings, Finding{
				Kind: KindDanglingEdge, Severity: SevError, Addr: pc * 2,
				Detail: fmt.Sprintf("vector %d target 0x%X is not a function entry", pc/2, t),
			})
		}
	}
	return findings, st
}

// diffRange lockstep-walks size bytes of code living at oldStart in the
// original image and newStart in the randomized one. block names the
// function ("" for the fixed region); vecEnd bounds the vector table in
// the fixed region.
func diffRange(orig, rnd []byte, oldStart, newStart, size uint32, block string, vecEnd uint32, remap func(uint32) uint32, st *DiffStats) []Finding {
	var findings []Finding
	oldW, newW := oldStart/2, newStart/2
	endW := size / 2
	for pc := uint32(0); pc < endW; {
		oin := avr.DecodeAt(orig, oldW+pc)
		nin := avr.DecodeAt(rnd, newW+pc)
		addr := (newW + pc) * 2
		if oin.Op == avr.OpInvalid {
			findings = append(findings, Finding{
				Kind: KindUndecodable, Severity: SevError, Addr: addr, Block: block,
				Detail: "original instruction stream does not decode; diff truncated here",
			})
			return findings
		}
		if oin.Op != nin.Op || oin.Words != nin.Words {
			findings = append(findings, Finding{
				Kind: KindOpcodeMismatch, Severity: SevError, Addr: addr, Block: block,
				Detail: fmt.Sprintf("instruction changed from %s to %s; streams diverged, diff truncated here",
					oin.Op, nin.Op),
			})
			return findings
		}
		st.WordsCompared += oin.Words
		kind := KindUnpatchedTransfer
		if block == "" && addr < vecEnd {
			kind = KindUnpatchedVector
		}

		switch oin.Op {
		case avr.OpJMP, avr.OpCALL:
			st.TransfersChecked++
			want := remap(oin.Target * 2)
			if got := nin.Target * 2; got != want {
				findings = append(findings, Finding{
					Kind: kind, Severity: SevError, Addr: addr, Block: block,
					Detail: fmt.Sprintf("%s 0x%X should be patched to 0x%X, found 0x%X",
						oin.Op, oin.Target*2, want, got),
				})
			} else if avr.DecodeAt(rnd, want/2).Op == avr.OpInvalid {
				findings = append(findings, Finding{
					Kind: KindDanglingEdge, Severity: SevError, Addr: addr, Block: block,
					Detail: fmt.Sprintf("patched %s target 0x%X does not decode", oin.Op, want),
				})
			}
		case avr.OpRJMP, avr.OpRCALL, avr.OpBRBS, avr.OpBRBC:
			st.TransfersChecked++
			oldAbs := uint32(int64(oldW+pc)+1+int64(oin.K)) * 2
			newAbs := uint32(int64(newW+pc)+1+int64(nin.K)) * 2
			if want := remap(oldAbs); newAbs != want {
				findings = append(findings, Finding{
					Kind: kind, Severity: SevError, Addr: addr, Block: block,
					Detail: fmt.Sprintf("%s to 0x%X should reach 0x%X after relocation, found 0x%X",
						oin.Op, oldAbs, want, newAbs),
				})
			}
		case avr.OpSPM:
			findings = append(findings, Finding{
				Kind: KindUnverifiableSPM, Severity: SevError, Addr: addr, Block: block,
				Detail: "spm inside verified region: self-modifying code cannot be proven patch-complete",
			})
		default:
			// Everything else must be byte-identical.
			same := wordAt(orig, oldW+pc) == wordAt(rnd, newW+pc)
			if oin.Words == 2 {
				same = same && wordAt(orig, oldW+pc+1) == wordAt(rnd, newW+pc+1)
			}
			if !same {
				findings = append(findings, Finding{
					Kind: KindOpcodeMismatch, Severity: SevError, Addr: addr, Block: block,
					Detail: fmt.Sprintf("%s operands changed; streams diverged, diff truncated here", oin.Op),
				})
				return findings
			}
		}
		pc += uint32(oin.Words)
	}
	return findings
}

// Fault-injection errors.
var (
	// ErrNoSuchPatch is returned by RevertPatch when fewer patched
	// sites exist than the requested index.
	ErrNoSuchPatch = errors.New("staticverify: no patched site with that index")
)

// RevertPatch undoes the n-th (0-based) patched direct transfer in a
// randomization outcome, writing the original encoding back into
// r.Image. It exists to inject exactly the defect the verifier must
// catch — a rewriter that missed one site — for tests, demos and CI
// canaries. It returns the byte address of the reverted instruction in
// the randomized image.
func RevertPatch(pre *core.Preprocessed, r *core.Randomized, n int) (uint32, error) {
	type region struct{ oldStart, newStart, size uint32 }
	regions := []region{{0, 0, pre.RegionStart}}
	for i, b := range pre.Blocks {
		regions = append(regions, region{b.Start, r.NewStart[i], b.Size})
	}
	seen := 0
	for _, reg := range regions {
		oldW, newW := reg.oldStart/2, reg.newStart/2
		for pc := uint32(0); pc < reg.size/2; {
			oin := avr.DecodeAt(pre.Image, oldW+pc)
			if oin.Op == avr.OpInvalid {
				break
			}
			if oin.IsCallOrJump() || oin.Op == avr.OpBRBS || oin.Op == avr.OpBRBC {
				patched := false
				for w := uint32(0); w < uint32(oin.Words); w++ {
					if wordAt(pre.Image, oldW+pc+w) != wordAt(r.Image, newW+pc+w) {
						patched = true
					}
				}
				if patched {
					if seen == n {
						for w := uint32(0); w < uint32(oin.Words); w++ {
							copy(r.Image[(newW+pc+w)*2:], pre.Image[(oldW+pc+w)*2:(oldW+pc+w)*2+2])
						}
						return (newW + pc) * 2, nil
					}
					seen++
				}
			}
			pc += uint32(oin.Words)
		}
	}
	return 0, ErrNoSuchPatch
}

// RevertPointerPatch undoes the n-th rewritten data-section function
// pointer, returning its flash byte offset. Like RevertPatch, it is a
// fault injector for exercising the verifier.
func RevertPointerPatch(pre *core.Preprocessed, r *core.Randomized, n int) (uint32, error) {
	seen := 0
	for _, off := range pre.PtrOffsets {
		if pre.Image[off] == r.Image[off] && pre.Image[off+1] == r.Image[off+1] {
			continue
		}
		if seen == n {
			r.Image[off] = pre.Image[off]
			r.Image[off+1] = pre.Image[off+1]
			return off, nil
		}
		seen++
	}
	return 0, ErrNoSuchPatch
}
