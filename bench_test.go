// Benchmarks regenerating the paper's evaluation artifacts (one per
// table/figure) plus performance benchmarks of the substrate itself.
// Reported custom metrics carry the measured values next to the units
// the paper uses.
package mavr_test

import (
	"io"
	"math/rand"
	"testing"
	"time"

	"mavr/internal/asm"
	"mavr/internal/attack"
	"mavr/internal/avr"
	"mavr/internal/board"
	"mavr/internal/core"
	"mavr/internal/firmware"
	"mavr/internal/gadget"
	"mavr/internal/mavlink"
	"mavr/internal/scenario"
)

// --- Table I: number of functions ---------------------------------------

func BenchmarkTableI_FunctionCounts(b *testing.B) {
	paper := map[string]int{"arduplane": 917, "arducopter": 1030, "ardurover": 800}
	for _, spec := range firmware.Profiles() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				img, err := firmware.Generate(spec, firmware.ModeMAVR)
				if err != nil {
					b.Fatal(err)
				}
				n = len(img.ELF.FuncSymbols())
			}
			b.ReportMetric(float64(n), "functions")
			b.ReportMetric(float64(paper[spec.Name]), "paper_functions")
		})
	}
}

// --- Table II: startup overhead ------------------------------------------

func BenchmarkTableII_StartupOverhead(b *testing.B) {
	paper := map[string]int64{"arduplane": 19209, "arducopter": 21206, "ardurover": 15412}
	for _, spec := range firmware.Profiles() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			img, err := firmware.Generate(spec, firmware.ModeMAVR)
			if err != nil {
				b.Fatal(err)
			}
			var ms int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{Seed: int64(i) + 1}})
				if err := sys.FlashFirmware(img); err != nil {
					b.Fatal(err)
				}
				rep, err := sys.Boot()
				if err != nil {
					b.Fatal(err)
				}
				ms = rep.Total.Milliseconds()
			}
			b.ReportMetric(float64(ms), "sim_ms")
			b.ReportMetric(float64(paper[spec.Name]), "paper_ms")
		})
	}
}

// --- Table III: change in code size --------------------------------------

func BenchmarkTableIII_CodeSize(b *testing.B) {
	paperStock := map[string]int{"arduplane": 221608, "arducopter": 244532, "ardurover": 177870}
	paperMAVR := map[string]int{"arduplane": 221294, "arducopter": 244292, "ardurover": 177556}
	for _, spec := range firmware.Profiles() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			var stockN, mavrN int
			for i := 0; i < b.N; i++ {
				stock, err := firmware.Generate(spec, firmware.ModeStock)
				if err != nil {
					b.Fatal(err)
				}
				mv, err := firmware.Generate(spec, firmware.ModeMAVR)
				if err != nil {
					b.Fatal(err)
				}
				stockN, mavrN = len(stock.Flash), len(mv.Flash)
			}
			b.ReportMetric(float64(stockN), "stock_B")
			b.ReportMetric(float64(paperStock[spec.Name]), "paper_stock_B")
			b.ReportMetric(float64(mavrN), "mavr_B")
			b.ReportMetric(float64(paperMAVR[spec.Name]), "paper_mavr_B")
		})
	}
}

// --- §VII-A effectiveness -------------------------------------------------

func BenchmarkEffectiveness_GadgetCensus(b *testing.B) {
	img, err := firmware.Generate(firmware.Arduplane(), firmware.ModeMAVR)
	if err != nil {
		b.Fatal(err)
	}
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = len(gadget.Scan(img.Flash, 24))
	}
	b.ReportMetric(float64(n), "gadgets")
	b.ReportMetric(953, "paper_gadgets")
}

func BenchmarkEffectiveness_StealthyAttackVsRandomized(b *testing.B) {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		b.Fatal(err)
	}
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		b.Fatal(err)
	}
	payload, err := attack.BuildV2(a, attack.GyroCfgWrite(0x7F))
	if err != nil {
		b.Fatal(err)
	}
	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// One simulator for the whole sweep: each permutation reloads flash
	// and resets the core instead of reallocating the 256 KiB memories.
	sim, err := attack.NewSim(img.Flash)
	if err != nil {
		b.Fatal(err)
	}
	succeeded := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.Randomize(pre, core.Permutation(rng, len(pre.Blocks)))
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Reset(r.Image); err != nil {
			b.Fatal(err)
		}
		fault := sim.Deliver(attack.Frame(payload), 200_000)
		if fault == nil && sim.CPU.Data[firmware.AddrGyroCfg] == 0x7F {
			succeeded++
		}
	}
	b.ReportMetric(float64(succeeded)/float64(b.N), "attack_success_rate")
}

// --- §V-D / §VIII-B security models ---------------------------------------

func BenchmarkBruteForce(b *testing.B) {
	for _, n := range []int{3, 4, 5} {
		n := n
		b.Run(map[int]string{3: "n3", 4: "n4", 5: "n5"}[n], func(b *testing.B) {
			// Worker-pool sweep with deterministic per-chunk RNGs: the
			// reported metrics are identical for a fixed seed no matter
			// how many workers run the trials.
			var fixed, rer core.BruteForceResult
			for i := 0; i < b.N; i++ {
				fixed = core.SimulateBruteForceFixedParallel(1, n, 500, 0)
				rer = core.SimulateBruteForceRerandomizedParallel(1, n, 500, 0)
			}
			b.ReportMetric(fixed.MeanAttempts, "fixed_attempts")
			b.ReportMetric(rer.MeanAttempts, "mavr_attempts")
		})
	}
}

func BenchmarkEntropy(b *testing.B) {
	var bits float64
	for i := 0; i < b.N; i++ {
		bits = core.EntropyBits(800)
	}
	b.ReportMetric(bits, "bits")
	b.ReportMetric(6567, "paper_bits")
}

// --- Fig. 6: stealthy attack trace ----------------------------------------

func BenchmarkFig6_StackTrace(b *testing.B) {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		b.Fatal(err)
	}
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		b.Fatal(err)
	}
	var snaps int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := attack.TraceV2(a, img.Flash, attack.GyroCfgWrite(0x7F))
		if err != nil {
			b.Fatal(err)
		}
		snaps = len(s)
	}
	b.ReportMetric(float64(snaps), "stages")
}

// --- Substrate performance benchmarks -------------------------------------

func BenchmarkCPUExecution(b *testing.B) {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := attack.NewSim(img.Flash)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := sim.CPU.Cycles
	for i := 0; i < b.N; i++ {
		if f := sim.Run(10_000); f != nil {
			b.Fatal(f)
		}
	}
	b.ReportMetric(float64(sim.CPU.Cycles-start)/float64(b.N), "cycles/op")
}

// BenchmarkScenarioReplay replays the richest golden scenario end to
// end (firmware generation, boot, attack injection, MAVR response) —
// the deterministic-harness workload the block translation engine is
// meant to accelerate.
func BenchmarkScenarioReplay(b *testing.B) {
	spec, err := scenario.Lookup("v2-vs-mavr-detected")
	if err != nil {
		b.Fatal(err)
	}
	var records int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := scenario.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		records = len(r.Records)
	}
	b.ReportMetric(float64(records), "records")
}

func BenchmarkRandomizeArduplane(b *testing.B) {
	img, err := firmware.Generate(firmware.Arduplane(), firmware.ModeMAVR)
	if err != nil {
		b.Fatal(err)
	}
	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Randomize(pre, core.Permutation(rng, len(pre.Blocks))); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(img.Flash)))
}

func BenchmarkGadgetScanArduplane(b *testing.B) {
	img, err := firmware.Generate(firmware.Arduplane(), firmware.ModeMAVR)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gadget.Scan(img.Flash, 24)
	}
	b.SetBytes(int64(len(img.Flash)))
}

func BenchmarkMAVLinkRoundTrip(b *testing.B) {
	hb := &mavlink.Heartbeat{Type: 1, SystemStatus: mavlink.StateActive}
	f := &mavlink.Frame{MsgID: mavlink.MsgIDHeartbeat, Payload: hb.Marshal()}
	wire, err := f.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var p mavlink.Parser
		if got := p.FeedBytes(wire); len(got) != 1 {
			b.Fatal("parse failed")
		}
	}
	b.SetBytes(int64(len(wire)))
}

func BenchmarkDisassemble(b *testing.B) {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		asm.Disassemble(img.Flash, 0, 200)
	}
}

func BenchmarkDecode(b *testing.B) {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		b.Fatal(err)
	}
	words := uint32(len(img.Flash) / 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		avr.DecodeAt(img.Flash, uint32(i)%words)
	}
}

func BenchmarkBoardSimulatedSecond(b *testing.B) {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := board.NewSystem(board.SystemConfig{Unprotected: true})
		if err := sys.FlashFirmware(img); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Boot(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := sys.Run(100 * time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamRandomizeArduplane(b *testing.B) {
	img, err := firmware.Generate(firmware.Arduplane(), firmware.ModeMAVR)
	if err != nil {
		b.Fatal(err)
	}
	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.StreamRandomize(pre, core.Permutation(rng, len(pre.Blocks)), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(img.Flash)))
}

func BenchmarkBootloaderProgramming(b *testing.B) {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		app := board.NewAppProcessor()
		app.InstallBootloader(img.Bootloader, firmware.BootloaderStart)
		c, err := app.ProgramViaBootloader(img.Flash)
		if err != nil {
			b.Fatal(err)
		}
		cycles = c
	}
	b.SetBytes(int64(len(img.Flash)))
	b.ReportMetric(float64(cycles)/float64(len(img.Flash)), "cycles/byte")
}
