// The §VII-A1 modularity observation as a measured sweep: "good code
// design that utilizes more modules also increases the number of
// symbols that can be shuffled around by MAVR, hence increasing brute
// force effort."
package mavr_test

import (
	"testing"

	"mavr/internal/core"
	"mavr/internal/firmware"
	"mavr/internal/gadget"
)

func BenchmarkModularitySweep(b *testing.B) {
	for _, n := range []int{100, 300, 600, 917} {
		n := n
		b.Run(map[int]string{100: "n100", 300: "n300", 600: "n600", 917: "n917"}[n], func(b *testing.B) {
			spec := firmware.TestApp()
			spec.Functions = n
			spec.Seed = int64(n)
			spec.DirectPointerTable = false
			var gadgets int
			var bits float64
			for i := 0; i < b.N; i++ {
				img, err := firmware.Generate(spec, firmware.ModeMAVR)
				if err != nil {
					b.Fatal(err)
				}
				gadgets = len(gadget.Scan(img.Flash, 24))
				bits = core.EntropyBits(n)
			}
			b.ReportMetric(float64(gadgets), "gadgets")
			b.ReportMetric(bits, "entropy_bits")
		})
	}
}
