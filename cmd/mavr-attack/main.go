// mavr-attack runs one of the paper's attack generations against a
// simulated board and reports the outcome as seen by the board and the
// ground station.
//
// Usage:
//
//	mavr-attack [-v 1|2|3] [-protect] [-value 0x7F]
//	mavr-attack -connect host:port [-sysid 1]   # inject over a mavr-fleetd socket
//
// With -connect the attack rides a real UDP uplink to a running
// mavr-fleetd vehicle instead of an in-process board; the outcome is
// reported from the attacker's own ground-station view (fleetd's
// -metrics endpoint has the vehicle.N.gyrocfg ground truth).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mavr/internal/attack"
	"mavr/internal/board"
	"mavr/internal/firmware"
	"mavr/internal/gcs"
	"mavr/internal/netlink"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	version := flag.Int("v", 2, "attack generation: 1 (basic), 2 (stealthy), 3 (trampoline)")
	protect := flag.Bool("protect", false, "attack a MAVR-protected board instead of a plain APM")
	value := flag.Int("value", 0x7F, "gyro configuration byte to write")
	trace := flag.Bool("trace", false, "print the Fig. 6 stack progression of the V2 chain")
	connect := flag.String("connect", "", "inject over a mavr-fleetd UDP socket at host:port instead of in-process")
	sysid := flag.Int("sysid", 1, "target vehicle system id (with -connect)")
	flag.Parse()

	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		return err
	}
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		return err
	}

	var payloads [][]byte
	switch *version {
	case 1:
		p, err := attack.BuildV1(a, attack.GyroCfgWrite(byte(*value)))
		if err != nil {
			return err
		}
		payloads = [][]byte{p}
	case 2:
		p, err := attack.BuildV2(a, attack.GyroCfgWrite(byte(*value)))
		if err != nil {
			return err
		}
		payloads = [][]byte{p}
	case 3:
		big := []attack.Write{attack.GyroCfgWrite(byte(*value))}
		for i := 0; i < 12; i++ {
			big = append(big, attack.Write{Addr: 0x1800 + uint16(3*i), Vals: [3]byte{0xDE, 0xAD, byte(i)}})
		}
		ps, err := attack.BuildV3(a, big, firmware.AddrFreeMem)
		if err != nil {
			return err
		}
		payloads = ps
	default:
		return fmt.Errorf("unknown attack version %d", *version)
	}

	if *trace {
		snaps, err := attack.TraceV2(a, img.Flash, attack.GyroCfgWrite(byte(*value)))
		if err != nil {
			return err
		}
		fmt.Println("stack progression (paper Fig. 6):")
		for _, s := range snaps {
			fmt.Println(s)
		}
	}

	if *connect != "" {
		return overSocket(*connect, byte(*sysid), *version, byte(*value), payloads)
	}

	cfg := board.SystemConfig{Unprotected: true}
	if *protect {
		cfg = board.SystemConfig{Master: board.MasterConfig{Seed: 7, WatchdogTimeout: 20 * time.Millisecond}}
	}
	sys := board.NewSystem(cfg)
	if err := sys.FlashFirmware(img); err != nil {
		return err
	}
	if _, err := sys.Boot(); err != nil {
		return err
	}
	g := gcs.NewGroundStation(sys)

	fly := func(d time.Duration) error {
		for e := time.Duration(0); e < d; e += 10 * time.Millisecond {
			if err := g.Step(10 * time.Millisecond); err != nil {
				return err
			}
		}
		return nil
	}
	if err := fly(100 * time.Millisecond); err != nil {
		return err
	}
	fmt.Printf("attacking with V%d (%d packet(s), %d payload bytes total)\n",
		*version, len(payloads), totalLen(payloads))
	for _, p := range payloads {
		g.SendFrame(attack.Frame(p))
		if err := fly(60 * time.Millisecond); err != nil {
			return err
		}
	}
	if err := fly(3 * time.Second); err != nil {
		return err
	}

	got := sys.App.CPU.Data[firmware.AddrGyroCfg]
	fmt.Printf("result: gyro-config=0x%02X (wanted 0x%02X) — attack %s\n",
		got, *value, map[bool]string{true: "SUCCEEDED", false: "FAILED"}[got == byte(*value)])
	fmt.Printf("board fault: %v\n", sys.LastFault())
	fmt.Printf("GCS view: pulses=%d gaps=%d garbage=%d max-silence=%v detected=%v\n",
		g.Mon.Pulses, g.Mon.SeqGaps, g.Mon.Garbage, g.Mon.MaxSilence.Round(time.Millisecond),
		g.Mon.CompromiseDetected(200*time.Millisecond))
	if *protect {
		st := sys.Master.Stats()
		fmt.Printf("master: failures detected=%d, randomizations=%d\n",
			st.FailuresDetected, st.Randomizations)
	}
	return nil
}

// overSocket delivers the attack frames through a mavr-fleetd UDP
// session and reports what a ground station sharing that socket would
// see. The fleet paces its own simulation, so cruise phases are waited
// out on the vehicle's sim clock as carried by received datagrams.
func overSocket(addr string, sysid byte, version int, value byte, payloads [][]byte) error {
	c, err := netlink.DialClient(addr, netlink.ClientConfig{SysID: sysid})
	if err != nil {
		return err
	}
	defer c.Close()

	waitSim := func(d time.Duration) error {
		target := c.SimTime() + d
		deadline := time.Now().Add(30*time.Second + 2*d)
		for c.SimTime() < target {
			if time.Now().After(deadline) {
				return fmt.Errorf("vehicle %d sim clock stalled at %v (fleet down or wrong sysid?)", sysid, c.SimTime())
			}
			time.Sleep(20 * time.Millisecond)
		}
		return nil
	}

	// Observe established cruise before injecting.
	if err := waitSim(200 * time.Millisecond); err != nil {
		return err
	}
	fmt.Printf("attacking vehicle %d at %s with V%d (%d packet(s), %d payload bytes total)\n",
		sysid, addr, version, len(payloads), totalLen(payloads))
	for _, p := range payloads {
		c.SendFrame(attack.Frame(p))
		if err := waitSim(60 * time.Millisecond); err != nil {
			return err
		}
	}
	if err := waitSim(time.Second); err != nil {
		return err
	}

	mon := c.Monitor()
	st := c.Stats()
	fmt.Printf("link: %d datagrams out, %d in, %d seq gaps\n",
		st.DatagramsOut, st.DatagramsIn, st.SeqGaps)
	fmt.Printf("GCS view: pulses=%d gaps=%d/%d(link) garbage=%d last-gyro=%d max-silence=%v detected=%v\n",
		mon.Pulses, mon.SeqGaps, mon.LinkGaps, mon.Garbage, mon.LastGyro,
		mon.MaxSilence.Round(time.Millisecond), mon.CompromiseDetected(200*time.Millisecond))
	fmt.Printf("ground truth: check vehicle.%d.gyrocfg on fleetd's -metrics endpoint (wanted %d)\n",
		sysid, value)
	return nil
}

func totalLen(ps [][]byte) int {
	n := 0
	for _, p := range ps {
		n += len(p)
	}
	return n
}
