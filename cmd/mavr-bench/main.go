// mavr-bench regenerates every table and figure of the paper's
// evaluation from the simulation, printing paper-reported values next
// to measured ones.
//
// Usage:
//
//	mavr-bench [-only table1,table2,table3,fig1,...,effectiveness,entropy,bruteforce]
//	mavr-bench -perf   # substrate micro-benchmarks in benchstat format
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mavr/internal/armory"
	"mavr/internal/asm"
	"mavr/internal/attack"
	"mavr/internal/avr"
	"mavr/internal/board"
	"mavr/internal/core"
	"mavr/internal/firmware"
	"mavr/internal/gadget"
	"mavr/internal/gcs"
	"mavr/internal/mavlink"
	"mavr/internal/netlink"
	"mavr/internal/scenario"
	"mavr/internal/staticverify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

var paperTables = map[string][3]int{
	// name -> arduplane, arducopter, ardurover
	"functions": {917, 1030, 800},
	"startupMs": {19209, 21206, 15412},
	"stockSize": {221608, 244532, 177870},
	"mavrSize":  {221294, 244292, 177556},
}

func run() error {
	only := flag.String("only", "", "comma-separated subset of experiments")
	perfMode := flag.Bool("perf", false, "run substrate micro-benchmarks and print benchstat-format lines")
	flag.Parse()
	if *perfMode {
		return perf()
	}
	want := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		if s != "" {
			want[s] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	type step struct {
		name string
		fn   func() error
	}
	steps := []step{
		{"table1", table1},
		{"table2", table2},
		{"table3", table3},
		{"effectiveness", effectiveness},
		{"matrix", matrix},
		{"entropy", entropy},
		{"bruteforce", bruteforce},
		{"fig1", fig1},
		{"fig2", fig2},
		{"fig3", fig3},
		{"fig4", fig45},
		{"fig6", fig6},
		{"fig7", fig7},
	}
	for _, s := range steps {
		if !sel(s.name) {
			continue
		}
		if err := s.fn(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	return nil
}

// perf runs the substrate micro-benchmarks that gate the emulator's
// performance work and prints them as benchstat-compatible lines, so a
// checked-in baseline (benchmarks/baseline.txt) can be compared against
// a working tree with `mavr-bench -perf > new.txt && benchstat
// benchmarks/baseline.txt new.txt`.
func perf() error {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		return err
	}
	plane, err := firmware.Generate(firmware.Arduplane(), firmware.ModeMAVR)
	if err != nil {
		return err
	}
	sim, err := attack.NewSim(img.Flash)
	if err != nil {
		return err
	}
	planePre, err := core.Preprocess(plane.ELF)
	if err != nil {
		return err
	}
	planeRnd, err := core.Randomize(planePre, core.Permutation(rand.New(rand.NewSource(1)), len(planePre.Blocks)))
	if err != nil {
		return err
	}

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"CPUExecution", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if f := sim.Run(10_000); f != nil {
					b.Fatal(f)
				}
			}
		}},
		{"GadgetScanArduplane", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gadget.Scan(plane.Flash, 24)
			}
		}},
		{"AttackSynthesize", func(b *testing.B) {
			// Full two-phase chain synthesis (landing + stealth) from a
			// cold gadget scan of the test application — the
			// attacker-side cost a generative scenario pays for each
			// synth injection.
			for i := 0; i < b.N; i++ {
				s, err := attack.Synthesize(img.ELF, attack.SynthOptions{Stealth: true, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if !s.Found {
					b.Fatal("synthesis found no chain")
				}
			}
		}},
		{"BruteForceN3", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SimulateBruteForceFixedParallel(1, 3, 500, 0)
				core.SimulateBruteForceRerandomizedParallel(1, 3, 500, 0)
			}
		}},
		{"BruteForceN5", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SimulateBruteForceFixedParallel(1, 5, 500, 0)
				core.SimulateBruteForceRerandomizedParallel(1, 5, 500, 0)
			}
		}},
		{"StaticVerify", func(b *testing.B) {
			// Full verification (CFG + diff, no gadget audit) of an
			// ArduPlane-scale randomization — the pre-flash gate the
			// master runs on every re-randomization.
			for i := 0; i < b.N; i++ {
				rep := staticverify.Verify(planePre, planeRnd, staticverify.Options{})
				if !rep.OK() {
					b.Fatal("verification failed")
				}
			}
		}},
		{"StaticVerifyVSA", func(b *testing.B) {
			// StaticVerify plus the value-set analysis: abstract
			// interpretation of every recovered function, indirect-site
			// resolution and stack-discipline proofs on an
			// ArduPlane-scale image — the armory's per-base analysis
			// cost before translation amortizes it across the fleet.
			for i := 0; i < b.N; i++ {
				rep := staticverify.Verify(planePre, planeRnd, staticverify.Options{VSA: true})
				if !rep.OK() {
					b.Fatal("verification failed")
				}
			}
		}},
		{"StaticVerifyCached", func(b *testing.B) {
			// Same verification as StaticVerify, through a reusable
			// staticverify.Base handle: the CFG recovery is paid once
			// outside the loop, each iteration runs the cached lockstep
			// diff — the armory's per-artifact cost on a cache hit.
			base := staticverify.NewBase(planePre, staticverify.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := base.Verify(planeRnd)
				if !rep.OK() {
					b.Fatal("verification failed")
				}
			}
		}},
		{"ArmoryRandomizeCold", func(b *testing.B) {
			// Full armory pipeline with an empty cache each iteration:
			// parse + preprocess + CFG recovery + permute + patch +
			// verify + sign for one ArduPlane-scale image.
			raw, err := plane.ELF.Marshal()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := armory.New(armory.Config{Workers: 1, Opts: &staticverify.Options{}})
				if _, err := s.Randomize(armory.Request{Image: raw, Vehicle: "bench", Epoch: uint64(i)}); err != nil {
					b.Fatal(err)
				}
				s.Close()
			}
		}},
		{"ArmoryRandomizeCached", func(b *testing.B) {
			// Steady-state armory pipeline: the base is cached, each
			// iteration provisions a distinct vehicle off the shared
			// preprocessing — the per-artifact cost of fleet batches.
			raw, err := plane.ELF.Marshal()
			if err != nil {
				b.Fatal(err)
			}
			s := armory.New(armory.Config{Workers: 1, Opts: &staticverify.Options{}})
			defer s.Close()
			if _, err := s.Randomize(armory.Request{Image: raw, Vehicle: "warmup", Epoch: 0}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Randomize(armory.Request{Image: raw, Vehicle: fmt.Sprintf("bench-%d", i), Epoch: 0}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"Decode", func(b *testing.B) {
			words := uint32(len(img.Flash) / 2)
			for i := 0; i < b.N; i++ {
				avr.DecodeAt(img.Flash, uint32(i)%words)
			}
		}},
		{"ScenarioReplay", benchScenarioReplay},
		{"FrameEncode", benchFrameEncode},
		{"FrameParse", benchFrameParse},
		{"NetlinkRoundTrip", benchNetlinkRoundTrip},
	}
	fmt.Println("goos: linux")
	fmt.Println("goarch: amd64")
	fmt.Println("pkg: mavr/cmd/mavr-bench")
	for _, bench := range benches {
		fn := bench.fn
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		fmt.Printf("Benchmark%s \t%8d\t%12.1f ns/op\t%8d B/op\t%8d allocs/op\n",
			bench.name, r.N, float64(r.T.Nanoseconds())/float64(r.N),
			r.AllocedBytesPerOp(), r.AllocsPerOp())
	}
	// Not benchstat input, hence the comment prefix: how much of the
	// CPUExecution workload the block engine absorbed vs interpreted.
	st := sim.CPU.TranslationStats()
	fmt.Printf("# avr block engine: translated=%d invalidated=%d execs=%d bails=%d interp-steps=%d\n",
		st.Translated, st.Invalidated, st.Execs, st.Bails, st.InterpSteps)

	// Armory batch throughput: a fleet-provisioning burst (one base,
	// distinct vehicles, all worker slots busy). Wall-clock measured,
	// comment-prefixed like the block-engine line.
	if err := perfArmoryBatch(plane); err != nil {
		return err
	}
	// Attack-synthesis cost curve: chain search attempts against
	// successive re-randomization epochs — the measured form of the
	// paper's n! brute-force argument. Epoch 0 is the binary the shapes
	// came from; later epochs replay the stale candidate set (plus
	// blind probes) against fresh permutations and exhaust the budget.
	pts, err := attack.SynthesisCostCurve(firmware.TestApp(), 3, 24, 7)
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Printf("# synthesis cost: epoch=%d attempts=%d blind=%d found=%v stealthy=%v\n",
			p.Epoch, p.Attempts, p.Blind, p.Found, p.Stealthy)
	}
	return nil
}

// perfArmoryBatch measures the armory's steady-state batch rate:
// ArduPlane-scale images for 256 distinct vehicles through a
// NumCPU-worker pool off one cached base.
func perfArmoryBatch(plane *firmware.Image) error {
	raw, err := plane.ELF.Marshal()
	if err != nil {
		return err
	}
	workers := runtime.NumCPU()
	s := armory.New(armory.Config{Workers: workers, Opts: &staticverify.Options{}})
	defer s.Close()
	if _, err := s.Randomize(armory.Request{Image: raw, Vehicle: "warmup", Epoch: 0}); err != nil {
		return err
	}
	const batch = 256
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, batch)
	for i := 0; i < batch; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Randomize(armory.Request{Image: raw, Vehicle: fmt.Sprintf("batch-%d", i), Epoch: 0})
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	fmt.Printf("# armory batch: %d arduplane images, %d workers: %.1f images/sec (%v total)\n",
		batch, workers, float64(batch)/elapsed.Seconds(), elapsed.Round(time.Millisecond))
	return nil
}

// benchScenarioReplay measures one full deterministic replay of the
// v1-crash scenario (1.5s of simulated flight, firmware generation,
// attack synthesis and trace emission) — the unit of work the golden
// conformance gate performs per scenario.
func benchScenarioReplay(b *testing.B) {
	spec, err := scenario.Lookup("v1-crash")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := scenario.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Records) == 0 || res.Records[len(res.Records)-1].Kind != "verdict" {
			b.Fatal("replay produced no verdict")
		}
	}
}

func benchHeartbeatFrame() *mavlink.Frame {
	hb := &mavlink.Heartbeat{Type: 1, Autopilot: 3, SystemStatus: mavlink.StateActive, MavlinkVersion: 3}
	return &mavlink.Frame{MsgID: mavlink.MsgIDHeartbeat, SysID: 1, CompID: 1, Payload: hb.Marshal()}
}

func benchFrameEncode(b *testing.B) {
	f := benchHeartbeatFrame()
	buf := make([]byte, 0, 64)
	for i := 0; i < b.N; i++ {
		out, err := f.AppendMarshal(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

func benchFrameParse(b *testing.B) {
	frames := make([]*mavlink.Frame, 16)
	for i := range frames {
		f := benchHeartbeatFrame()
		f.Seq = byte(i)
		frames[i] = f
	}
	wire, err := mavlink.MarshalBatch(frames)
	if err != nil {
		b.Fatal(err)
	}
	var p mavlink.Parser
	b.SetBytes(int64(len(wire)))
	for i := 0; i < b.N; i++ {
		p.FeedBytes(wire)
	}
	if p.Stats().Frames == 0 {
		b.Fatal("parser produced no frames")
	}
}

// benchNetlinkRoundTrip measures one encode → UDP loopback send →
// receive → decode cycle of the fleet transport, mirroring
// internal/netlink's BenchmarkNetlinkRoundTrip.
func benchNetlinkRoundTrip(b *testing.B) {
	echoConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		b.Fatal(err)
	}
	defer echoConn.Close()
	go func() {
		buf := make([]byte, 1<<16)
		for {
			n, addr, err := echoConn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			echoConn.WriteToUDP(buf[:n], addr)
		}
	}()
	conn, err := net.DialUDP("udp", nil, echoConn.LocalAddr().(*net.UDPAddr))
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()

	payload := make([]byte, 256)
	buf := make([]byte, 1<<16)
	for i := 0; i < b.N; i++ {
		pkt := netlink.Encode(netlink.Header{Type: netlink.PacketData, SysID: 1, Seq: uint32(i)}, payload)
		if _, err := conn.Write(pkt); err != nil {
			b.Fatal(err)
		}
		n, err := conn.Read(buf)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := netlink.Decode(buf[:n]); err != nil {
			b.Fatal(err)
		}
	}
}

func genAll() ([]*firmware.Image, error) {
	var out []*firmware.Image
	for _, spec := range firmware.Profiles() {
		img, err := firmware.Generate(spec, firmware.ModeMAVR)
		if err != nil {
			return nil, err
		}
		out = append(out, img)
	}
	return out, nil
}

func table1() error {
	fmt.Println("TABLE I — NUMBER OF FUNCTIONS")
	fmt.Println("  application   paper   measured")
	imgs, err := genAll()
	if err != nil {
		return err
	}
	var sum int
	for i, img := range imgs {
		n := len(img.ELF.FuncSymbols())
		sum += n
		fmt.Printf("  %-12s  %5d   %8d\n", img.Spec.Name, paperTables["functions"][i], n)
	}
	fmt.Printf("  average %d (paper ~916), median %d (paper 917)\n\n", sum/3, len(imgs[0].ELF.FuncSymbols()))
	return nil
}

func table2() error {
	fmt.Println("TABLE II — MAVR STARTUP OVERHEAD (115200-baud programming path)")
	fmt.Println("  application   paper(ms)   measured(ms)")
	imgs, err := genAll()
	if err != nil {
		return err
	}
	var total int64
	for i, img := range imgs {
		sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{Seed: int64(i) + 1}})
		if err := sys.FlashFirmware(img); err != nil {
			return err
		}
		rep, err := sys.Boot()
		if err != nil {
			return err
		}
		ms := rep.Total.Milliseconds()
		total += ms
		fmt.Printf("  %-12s  %9d   %12d\n", img.Spec.Name, paperTables["startupMs"][i], ms)
	}
	fmt.Printf("  average %d ms (paper 18609 ms)\n\n", total/3)
	return nil
}

func table3() error {
	fmt.Println("TABLE III — CHANGE IN CODE SIZE")
	fmt.Println("  application   stock(paper)  stock(meas)  mavr(paper)  mavr(meas)")
	for i, spec := range firmware.Profiles() {
		stock, err := firmware.Generate(spec, firmware.ModeStock)
		if err != nil {
			return err
		}
		mavrImg, err := firmware.Generate(spec, firmware.ModeMAVR)
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s  %12d  %11d  %11d  %10d\n", spec.Name,
			paperTables["stockSize"][i], len(stock.Flash),
			paperTables["mavrSize"][i], len(mavrImg.Flash))
	}
	fmt.Println()
	return nil
}

func effectiveness() error {
	fmt.Println("EFFECTIVENESS (§VII-A)")
	img, err := firmware.Generate(firmware.Arduplane(), firmware.ModeMAVR)
	if err != nil {
		return err
	}
	gs := gadget.Scan(img.Flash, 24)
	fmt.Printf("  gadget census on the test application: %d (paper: 953)\n", len(gs))

	small, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		return err
	}
	a, err := attack.Analyze(small.ELF)
	if err != nil {
		return err
	}
	payload, err := attack.BuildV2(a, attack.GyroCfgWrite(0x7F))
	if err != nil {
		return err
	}

	fly := func(g *gcs.GroundStation, d time.Duration) error {
		for e := time.Duration(0); e < d; e += 10 * time.Millisecond {
			if err := g.Step(10 * time.Millisecond); err != nil {
				return err
			}
		}
		return nil
	}

	// Stealthy attack vs the unprotected board.
	open := board.NewSystem(board.SystemConfig{Unprotected: true})
	if err := open.FlashFirmware(small); err != nil {
		return err
	}
	if _, err := open.Boot(); err != nil {
		return err
	}
	og := gcs.NewGroundStation(open)
	if err := fly(og, 100*time.Millisecond); err != nil {
		return err
	}
	og.SendFrame(attack.Frame(payload))
	if err := fly(og, 400*time.Millisecond); err != nil {
		return err
	}
	fmt.Printf("  unprotected board:  attack %s, GCS detected: %v\n",
		okfail(open.App.CPU.Data[firmware.AddrGyroCfg] == 0x7F),
		og.Mon.CompromiseDetected(200*time.Millisecond))

	// Same payload vs the randomized board.
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{Seed: 5, WatchdogTimeout: 20 * time.Millisecond}})
	if err := sys.FlashFirmware(small); err != nil {
		return err
	}
	if _, err := sys.Boot(); err != nil {
		return err
	}
	g := gcs.NewGroundStation(sys)
	if err := fly(g, 100*time.Millisecond); err != nil {
		return err
	}
	g.SendFrame(attack.Frame(payload))
	if err := fly(g, 4*time.Second); err != nil {
		return err
	}
	st := sys.Master.Stats()
	fmt.Printf("  MAVR board:         attack %s, failures detected=%d, reflashes=%d\n\n",
		okfail(sys.App.CPU.Data[firmware.AddrGyroCfg] == 0x7F),
		st.FailuresDetected, st.Randomizations-1)
	return nil
}

func okfail(ok bool) string {
	if ok {
		return "SUCCEEDED"
	}
	return "FAILED"
}

// matrix runs the stale stealthy attack against every deployment
// configuration the paper discusses and tabulates the outcomes.
func matrix() error {
	fmt.Println("DEPLOYMENT MATRIX — stale stealthy (V2) attack vs configuration")
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		return err
	}
	patchedSpec := firmware.TestApp()
	patchedSpec.Vulnerable = false
	patched, err := firmware.Generate(patchedSpec, firmware.ModeMAVR)
	if err != nil {
		return err
	}
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		return err
	}
	payload, err := attack.BuildV2(a, attack.GyroCfgWrite(0x7F))
	if err != nil {
		return err
	}
	bootA := *a
	if err := bootA.UseFixedGadgets(img.Bootloader, firmware.BootloaderStart); err != nil {
		return err
	}
	bootPayload, err := attack.BuildV1(&bootA, attack.GyroCfgWrite(0x7F))
	if err != nil {
		return err
	}
	persistPayload, err := attack.BuildV1(&bootA,
		attack.EEPROMCfgWrites(firmware.EEPROMCfgAddr, 0x7F)...)
	if err != nil {
		return err
	}

	type row struct {
		name    string
		fw      *firmware.Image
		cfg     board.SystemConfig
		payload []byte
	}
	rows := []row{
		{"unprotected APM, vulnerable FW, V2", img,
			board.SystemConfig{Unprotected: true}, payload},
		{"unprotected APM, patched FW, V2", patched,
			board.SystemConfig{Unprotected: true}, payload},
		{"software-only randomization, V2", img,
			board.SystemConfig{SoftwareOnly: true, SoftwareSeed: 3}, payload},
		{"MAVR, V2", img,
			board.SystemConfig{Master: board.MasterConfig{Seed: 5, WatchdogTimeout: 20 * time.Millisecond}}, payload},
		{"MAVR + serial bootloader, boot-gadget V1", img,
			board.SystemConfig{Master: board.MasterConfig{Seed: 5, WatchdogTimeout: 20 * time.Millisecond}}, bootPayload},
		{"MAVR + bootloader, boot-gadget EEPROM V1", img,
			board.SystemConfig{Master: board.MasterConfig{Seed: 5, WatchdogTimeout: 20 * time.Millisecond}}, persistPayload},
	}
	fmt.Println("  configuration                              write  board-alive  master-recovered")
	for _, r := range rows {
		sys := board.NewSystem(r.cfg)
		if err := sys.FlashFirmware(r.fw); err != nil {
			return err
		}
		if _, err := sys.Boot(); err != nil {
			return err
		}
		g := gcs.NewGroundStation(sys)
		if err := g.Fly(100 * time.Millisecond); err != nil {
			return err
		}
		g.SendFrame(attack.Frame(r.payload))
		if err := g.Fly(3 * time.Second); err != nil {
			return err
		}
		landed := sys.App.CPU.Data[firmware.AddrGyroCfg] == 0x7F
		alive := sys.App.Running()
		recovered := "-"
		if sys.Master != nil {
			recovered = fmt.Sprintf("%v (%d reflashes)",
				sys.Master.Stats().FailuresDetected > 0, sys.Master.Stats().Randomizations-1)
		}
		fmt.Printf("  %-42s %-6v %-12v %s\n", r.name, landed, alive, recovered)
	}
	fmt.Println()
	return nil
}

func entropy() error {
	fmt.Println("ENTROPY (§VIII-B)")
	for _, spec := range firmware.Profiles() {
		fmt.Printf("  %-12s %4d symbols -> %7.0f bits\n",
			spec.Name, spec.Functions, core.EntropyBits(spec.Functions))
	}
	fmt.Printf("  (paper: ArduRover's 800 symbols -> 6567 bits; measured %.0f)\n\n",
		core.EntropyBits(800))
	return nil
}

func bruteforce() error {
	fmt.Println("BRUTE FORCE (§V-D): mean attempts, 4000 Monte-Carlo trials")
	fmt.Println("  n    fixed (model (n!+1)/2)    MAVR re-randomized (model n!)")
	for _, n := range []int{3, 4, 5} {
		// Worker-pool sweeps; deterministic for the fixed seed regardless
		// of worker count.
		f := core.SimulateBruteForceFixedParallel(1, n, 4000, 0)
		r := core.SimulateBruteForceRerandomizedParallel(1, n, 4000, 0)
		fmt.Printf("  %d    %7.1f (%7.1f)           %7.1f (%7.1f)\n",
			n, f.MeanAttempts, f.ModelAttempts, r.MeanAttempts, r.ModelAttempts)
	}
	fmt.Println()
	return nil
}

func fig1() error {
	fmt.Println("FIG. 1 — MEMORY FOR ATMEGA2560")
	fmt.Println(avr.FormatMemoryMap())
	return nil
}

func fig2() error {
	fmt.Println("FIG. 2 — MAVLINK PACKET STRUCTURE")
	fmt.Println(mavlink.HeaderDescription())
	return nil
}

func fig3() error {
	fmt.Println("FIG. 3 — ATTACK VECTOR")
	fmt.Println(`  [malicious / compromised ground station]
        | MAVLink over telemetry (oversize PARAM_SET frames)
        v
  [UAV: APM 2.5, ATmega2560] -- buffer overflow in handle_param_set
        | ROP chain: stk_move pivot -> write_mem writes -> frame repair
        v
  gyroscope configuration corrupted; telemetry continues normally`)
	fmt.Println()
	return nil
}

func fig45() error {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		return err
	}
	sm, err := gadget.FindStkMove(img.Flash)
	if err != nil {
		return err
	}
	fmt.Println("FIG. 4 — stk_move GADGET")
	fmt.Print(asm.Disassemble(img.Flash, sm.Addr, 4+len(sm.PopRegs)))
	wm, err := gadget.FindWriteMem(img.Flash, 5)
	if err != nil {
		return err
	}
	fmt.Println("\nFIG. 5 — write_mem_gadget")
	fmt.Print(asm.Disassemble(img.Flash, wm.StoreAddr, 4+len(wm.PopRegs)))
	fmt.Println()
	return nil
}

func fig6() error {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		return err
	}
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		return err
	}
	snaps, err := attack.TraceV2(a, img.Flash, attack.GyroCfgWrite(0x7F))
	if err != nil {
		return err
	}
	fmt.Println("FIG. 6 — STACK PROGRESSION DURING ATTACK")
	for _, s := range snaps {
		fmt.Println(s)
	}
	return nil
}

func fig7() error {
	fmt.Println("FIG. 7 — MAVR SYSTEM DIAGRAM")
	fmt.Printf(`  [host PC] --preprocess (symbols+pointers prepended to HEX)--> [external flash M95M02, %dKB]
                                                                      |
                                              read+randomize+patch (streamed)
                                                                      v
  [master ATmega1284P] --serial bootloader @115200 baud--> [application ATmega2560]
         ^   watchdog feeds / boot handshake                   (readout fuse set)
         +----------------------------------------------------------+
  on missing feed or unexpected boot: reset, re-randomize, reprogram
`, board.ExternalFlashCapacity/1024)
	fmt.Println()
	return nil
}
