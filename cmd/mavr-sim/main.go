// mavr-sim flies a complete simulated mission and prints a ground
// station timeline: telemetry rates, gyro/heading state, heartbeat
// health, and — optionally — a mid-flight stealthy attack, on either an
// unprotected APM or a MAVR-protected board.
//
// Usage:
//
//	mavr-sim [-duration 3s] [-protect] [-attack v1|v2|nav] [-at 1s]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mavr/internal/attack"
	"mavr/internal/board"
	"mavr/internal/firmware"
	"mavr/internal/gcs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	duration := flag.Duration("duration", 3*time.Second, "mission length (simulated)")
	protect := flag.Bool("protect", false, "fly a MAVR-protected board")
	attackKind := flag.String("attack", "", "inject an attack: v1, v2 or nav")
	attackAt := flag.Duration("at", time.Second, "attack injection time")
	flag.Parse()

	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		return err
	}

	var payload []byte
	if *attackKind != "" {
		a, err := attack.Analyze(img.ELF)
		if err != nil {
			return err
		}
		switch *attackKind {
		case "v1":
			payload, err = attack.BuildV1(a, attack.GyroCfgWrite(0x7F))
		case "v2":
			payload, err = attack.BuildV2(a, attack.GyroCfgWrite(0x7F))
		case "nav":
			payload, err = attack.BuildV2(a, attack.Write{
				Addr: img.Layout.WaypointsAddr, Vals: [3]byte{0xEE, 0x00, 0x00},
			})
		default:
			return fmt.Errorf("unknown attack %q", *attackKind)
		}
		if err != nil {
			return err
		}
	}

	cfg := board.SystemConfig{Unprotected: true}
	if *protect {
		cfg = board.SystemConfig{Master: board.MasterConfig{Seed: 11, WatchdogTimeout: 20 * time.Millisecond}}
	}
	sys := board.NewSystem(cfg)
	if err := sys.FlashFirmware(img); err != nil {
		return err
	}
	rep, err := sys.Boot()
	if err != nil {
		return err
	}
	if rep.Randomized {
		fmt.Printf("boot: MAVR randomized %d bytes in %v\n", rep.ImageBytes, rep.Total.Round(time.Millisecond))
	} else {
		fmt.Println("boot: unprotected APM")
	}

	sys.AttachFlightProfile(board.DefaultFlightProfile())
	g := gcs.NewGroundStation(sys)
	fmt.Println("  t      pulses  gyro(truth)  hdg  heartbeats  status  anomalies")
	injected := false
	for elapsed := time.Duration(0); elapsed < *duration; elapsed += 250 * time.Millisecond {
		if payload != nil && !injected && elapsed >= *attackAt {
			g.SendFrame(attack.Frame(payload))
			fmt.Printf("%6s  >>> attack packet injected (%s, %d bytes)\n",
				elapsed.Round(time.Millisecond), *attackKind, len(payload))
			injected = true
		}
		if err := g.Fly(250 * time.Millisecond); err != nil {
			return err
		}
		anom := "-"
		if g.Mon.CompromiseDetected(200 * time.Millisecond) {
			anom = fmt.Sprintf("DETECTED (garbage=%d gaps=%d hbErr=%d silence=%v)",
				g.Mon.Garbage, g.Mon.SeqGaps, g.Mon.HeartbeatErrors, g.Mon.MaxSilence.Round(time.Millisecond))
		}
		fmt.Printf("%6s  %6d  %4d (%3d)   %3d  %10d  %6d  %s\n",
			sys.Now().Round(time.Millisecond), g.Mon.Pulses, g.Mon.LastGyro, sys.TruthGyro(),
			g.Mon.LastHeading, g.Mon.Heartbeats, g.Mon.LastStatus, anom)
	}

	fmt.Printf("\nfinal vehicle state: gyro-config=0x%02X fault=%v\n",
		sys.App.CPU.Data[firmware.AddrGyroCfg], sys.LastFault())
	if *protect {
		st := sys.Master.Stats()
		fmt.Printf("master: boots=%d randomizations=%d failures-detected=%d endurance=%d/%d\n",
			st.Boots, st.Randomizations, st.FailuresDetected, st.ProgramCycles, board.FlashEndurance)
	}
	if evs := sys.Events(); len(evs) > 0 {
		fmt.Println("\nboard event log:")
		for _, e := range evs {
			fmt.Printf("  %s\n", e)
		}
	}
	return nil
}
