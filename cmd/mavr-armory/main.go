// mavr-armory hosts the fleet-scale firmware randomization and
// verification service (internal/armory).
//
// In serve mode it listens for POST /randomize submissions (base image
// bytes, ?vehicle= and ?epoch= identity), runs each through the
// preprocess → permute → patch → verify → sign pipeline, and returns
// the signed artifact with its full verification report. The
// content-addressed base cache makes the expensive per-base work (ELF
// parse, preprocessing, CFG recovery, gadget census) a one-time cost,
// and the fleet permutation ledger guarantees no two vehicles are ever
// issued the same permutation of the same base image.
//
// Usage:
//
//	mavr-armory [-addr 127.0.0.1:8737] [-workers 4] [-key <hex>]
//	            [-no-gadgets] [-status 10s]
//	mavr-armory -soak N [-workers 4] [-no-gadgets]
//
// The -soak mode is a self-contained batch smoke test used by CI: it
// generates the built-in test application, stands the service up on a
// loopback listener, submits the same base image for N distinct
// vehicles over HTTP concurrently, and fails (exit 1) unless every
// request yielded a verified, signed artifact with a fleet-unique
// permutation and the base was preprocessed exactly once.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"mavr/internal/armory"
	"mavr/internal/firmware"
	"mavr/internal/staticverify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8737", "HTTP listen address")
	workers := flag.Int("workers", 4, "randomization worker pool size")
	keyHex := flag.String("key", "", "artifact signing key (hex; empty: built-in dev key)")
	noGadgets := flag.Bool("no-gadgets", false, "skip the residual gadget audit (diff+CFG verification only)")
	status := flag.Duration("status", 10*time.Second, "status line interval (0: quiet)")
	soak := flag.Int("soak", 0, "soak mode: submit the test image for N distinct vehicles, check fleet uniqueness, exit")
	flag.Parse()

	cfg := armory.Config{Workers: *workers}
	if *keyHex != "" {
		key, err := hex.DecodeString(*keyHex)
		if err != nil {
			return fmt.Errorf("bad -key: %w", err)
		}
		cfg.Secret = key
	}
	if *noGadgets {
		opts := staticverify.Options{}
		cfg.Opts = &opts
	}

	if *soak > 0 {
		return runSoak(*soak, cfg)
	}

	svc := armory.New(cfg)
	defer svc.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	srv := &http.Server{Handler: armory.Handler(svc)}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("armory: serving on http://%s (workers=%d, gadget audit=%v)\n",
		ln.Addr(), *workers, !*noGadgets)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	var tick <-chan time.Time
	if *status > 0 {
		t := time.NewTicker(*status)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case s := <-sigs:
			fmt.Printf("armory: %v, shutting down\n", s)
			return nil
		case <-tick:
			st := svc.Stats()
			fmt.Printf("armory: completed=%d failed=%d bases=%d issued-perms=%d cache-hit=%d/%d fast-verify=%d\n",
				st.Completed, st.Failed, st.CachedBases,
				st.ArtifactsSigned, st.CacheHits, st.CacheHits+st.CacheMisses, st.FastVerifies)
		}
	}
}

// runSoak is the CI batch smoke: N concurrent HTTP submissions of one
// base image for N distinct vehicles must produce N distinct verified
// permutations off a single preprocessing pass.
func runSoak(n int, cfg armory.Config) error {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		return fmt.Errorf("generating test firmware: %w", err)
	}
	elf, err := img.ELF.Marshal()
	if err != nil {
		return err
	}

	svc := armory.New(cfg)
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	srv := &http.Server{Handler: armory.Handler(svc)}
	go srv.Serve(ln)
	defer srv.Close()

	secret := cfg.Secret
	if secret == nil {
		secret = armory.DefaultSecret
	}
	client := armory.NewClient("http://"+ln.Addr().String(), secret)

	start := time.Now()
	arts := make([]*armory.Artifact, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arts[i], errs[i] = client.Randomize(elf, fmt.Sprintf("uav-%04d", i), 0)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	perms := make(map[string]int, n)
	images := make(map[string]int, n)
	bad := 0
	for i := 0; i < n; i++ {
		switch {
		case errs[i] != nil:
			fmt.Fprintf(os.Stderr, "soak: vehicle %d: %v\n", i, errs[i])
			bad++
		case !arts[i].Report.OK():
			fmt.Fprintf(os.Stderr, "soak: vehicle %d: report has %d errors\n", i, arts[i].Report.Errors())
			bad++
		default:
			if prev, dup := perms[arts[i].PermDigest]; dup {
				fmt.Fprintf(os.Stderr, "soak: DUPLICATE PERMUTATION for vehicles %d and %d\n", prev, i)
				bad++
			}
			perms[arts[i].PermDigest] = i
			if prev, dup := images[arts[i].ArtifactDigest]; dup {
				fmt.Fprintf(os.Stderr, "soak: DUPLICATE IMAGE for vehicles %d and %d\n", prev, i)
				bad++
			}
			images[arts[i].ArtifactDigest] = i
		}
	}
	st := svc.Stats()
	fmt.Printf("soak: %d vehicles in %v (%.1f artifacts/sec)\n", n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	fmt.Printf("soak: distinct permutations %d/%d, cache misses %d (hits %d), fast verifies %d, fallback %d, conflicts %d\n",
		len(perms), n, st.CacheMisses, st.CacheHits, st.FastVerifies, st.FallbackVerifies, st.LedgerConflicts)
	if bad > 0 {
		return fmt.Errorf("soak: %d violation(s)", bad)
	}
	if len(perms) != n {
		return fmt.Errorf("soak: %d distinct permutations for %d vehicles", len(perms), n)
	}
	if st.CacheMisses != 1 {
		return fmt.Errorf("soak: base preprocessed %d times, want exactly 1", st.CacheMisses)
	}
	if st.FallbackVerifies != 0 {
		return fmt.Errorf("soak: %d verifications fell off the cached fast path", st.FallbackVerifies)
	}
	fmt.Println("soak: OK")
	return nil
}
