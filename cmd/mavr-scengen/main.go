// mavr-scengen drives the generative scenario engine
// (internal/scengen): sample scenario Specs from seeds, run whole
// seed sweeps under the trace-invariant library and the differential
// comparator, and shrink a failing seed to a minimal reproducing Spec.
//
// Usage:
//
//	mavr-scengen gen -seed N [-n K]
//	mavr-scengen run -n K [-seed-base B] [-differential] [-json] [-shrink]
//	mavr-scengen shrink -seed N [-differential]
//	mavr-scengen invariants
//
// gen prints the generated Spec(s) as JSON, one per line. run
// generates and executes K consecutive seeds, checks every applicable
// invariant over each trace (plus the unprotected-vs-MAVR differential
// for MAVR specs with -differential), prints one deterministic digest
// line per seed, and exits 2 on any violation. shrink minimizes a
// failing seed's Spec by first-improvement restart over a fixed
// transformation list. invariants lists the library with the paper
// claims each property mechanizes.
//
// The sweep output is a pure function of (seed-base, n): CI runs the
// same sweep twice and byte-compares the digests, the same way the
// golden gate byte-compares individual traces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mavr/internal/scenario"
	"mavr/internal/scengen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	var failed bool
	switch os.Args[1] {
	case "gen":
		err = gen(os.Args[2:])
	case "run":
		failed, err = runSweep(os.Args[2:])
	case "shrink":
		err = shrinkCmd(os.Args[2:])
	case "invariants":
		err = listInvariants()
	case "-h", "--help", "help":
		usage()
		return
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mavr-scengen:", err)
		os.Exit(1)
	}
	if failed {
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mavr-scengen gen -seed N [-n K]
  mavr-scengen run -n K [-seed-base B] [-differential] [-json] [-shrink]
  mavr-scengen shrink -seed N [-differential]
  mavr-scengen invariants`)
}

func gen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "first seed")
	n := fs.Int("n", 1, "number of consecutive seeds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for i := 0; i < *n; i++ {
		b, err := json.Marshal(scengen.Generate(*seed + int64(i)))
		if err != nil {
			return err
		}
		fmt.Println(string(b))
	}
	return nil
}

// check runs one generated spec and returns every violation: the
// invariant library over its trace, plus (optionally, for MAVR specs)
// the differential comparison against the unprotected twin.
func check(spec scenario.Spec, differential bool) (*scenario.Result, []*scenario.Divergence, error) {
	res, err := scenario.Run(spec)
	if err != nil {
		return nil, nil, err
	}
	ds := scengen.CheckAll(spec, res.Records)
	if differential && spec.Board == scenario.BoardMAVR {
		d, err := scengen.DifferentialPair(spec)
		if err != nil {
			return nil, nil, err
		}
		if d != nil {
			ds = append(ds, d)
		}
	}
	return res, ds, nil
}

func runSweep(args []string) (failed bool, err error) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	n := fs.Int("n", 20, "number of seeds")
	base := fs.Int64("seed-base", 1, "first seed")
	differential := fs.Bool("differential", false, "also compare MAVR specs against their unprotected twin")
	asJSON := fs.Bool("json", false, "print violations as JSON")
	autoShrink := fs.Bool("shrink", false, "shrink the first failing seed to a minimal Spec")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	for i := 0; i < *n; i++ {
		seed := *base + int64(i)
		spec := scengen.Generate(seed)
		res, ds, err := check(spec, *differential)
		if err != nil {
			return true, fmt.Errorf("seed %d (%s/%s): %w", seed, spec.Board, spec.App, err)
		}
		status := "ok"
		if len(ds) > 0 {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-4s %-12s board=%-13s app=%-10s inj=%d records=%4d digest=%s\n",
			status, spec.Name, spec.Board, spec.App, len(spec.Injections), len(res.Records), scenario.TraceDigest(res.Records))
		for _, d := range ds {
			if *asJSON {
				out, _ := json.Marshal(struct {
					Seed int64                `json:"seed"`
					Diff *scenario.Divergence `json:"diff"`
				}{seed, d})
				fmt.Println(string(out))
			} else {
				fmt.Printf("     %s\n", d)
			}
		}
		if failed && *autoShrink {
			min := shrink(spec, *differential)
			b, _ := json.Marshal(min)
			fmt.Printf("shrunk seed %d to minimal failing spec:\n%s\n", seed, b)
			return true, nil
		}
	}
	return failed, nil
}

func shrinkCmd(args []string) error {
	fs := flag.NewFlagSet("shrink", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "failing seed")
	differential := fs.Bool("differential", false, "include the differential comparison in the failure predicate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := scengen.Generate(*seed)
	_, ds, err := check(spec, *differential)
	if err == nil && len(ds) == 0 {
		return fmt.Errorf("seed %d does not fail; nothing to shrink", *seed)
	}
	min := shrink(spec, *differential)
	b, err := json.MarshalIndent(min, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	_, ds, rerr := check(min, *differential)
	if rerr != nil {
		fmt.Fprintf(os.Stderr, "minimal spec run error: %v\n", rerr)
	}
	for _, d := range ds {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	return nil
}

// shrink minimizes a failing Spec by first-improvement restart: apply
// the first transformation that still fails, start over, stop when no
// transformation preserves the failure. A run error counts as a
// failure (the spec reproduces *some* defect either way).
func shrink(spec scenario.Spec, differential bool) scenario.Spec {
	failing := func(s scenario.Spec) bool {
		_, ds, err := check(s, differential)
		return err != nil || len(ds) > 0
	}
	for {
		improved := false
		for _, tr := range transforms(spec) {
			cand, changed := tr(spec)
			if !changed {
				continue
			}
			if failing(cand) {
				spec = cand
				improved = true
				break
			}
		}
		if !improved {
			return spec
		}
	}
}

// transforms is the fixed simplification list, most aggressive first.
func transforms(spec scenario.Spec) []func(scenario.Spec) (scenario.Spec, bool) {
	var out []func(scenario.Spec) (scenario.Spec, bool)
	// Drop each injection individually.
	for i := range spec.Injections {
		i := i
		out = append(out, func(s scenario.Spec) (scenario.Spec, bool) {
			if i >= len(s.Injections) {
				return s, false
			}
			injs := append([]scenario.Injection(nil), s.Injections[:i]...)
			injs = append(injs, s.Injections[i+1:]...)
			s.Injections = injs
			return s, true
		})
	}
	out = append(out,
		func(s scenario.Spec) (scenario.Spec, bool) {
			if !s.Link.Active() {
				return s, false
			}
			s.Link = scenario.LinkSpec{}
			return s, true
		},
		func(s scenario.Spec) (scenario.Spec, bool) {
			if !s.Chaos.Active() {
				return s, false
			}
			s.Chaos = scenario.ChaosSpec{}
			return s, true
		},
		func(s scenario.Spec) (scenario.Spec, bool) {
			if s.App == "" || s.App == "testapp" {
				return s, false
			}
			s.App = "testapp"
			return s, true
		},
		func(s scenario.Spec) (scenario.Spec, bool) {
			// Halve the run tail, keeping every injection's 1s budget.
			min := 400 * time.Millisecond
			for _, inj := range s.Injections {
				if need := inj.At + time.Second; need > min {
					min = need
				}
			}
			half := (s.Run / 2 / (50 * time.Millisecond)) * 50 * time.Millisecond
			if half < min {
				half = min
			}
			if half >= s.Run {
				return s, false
			}
			s.Run = half
			return s, true
		},
		func(s scenario.Spec) (scenario.Spec, bool) {
			if s.WatchdogTimeout == 0 && s.RandomizeEvery == 0 {
				return s, false
			}
			s.WatchdogTimeout = 0
			s.RandomizeEvery = 0
			return s, true
		},
	)
	return out
}

func listInvariants() error {
	for _, inv := range scengen.Invariants() {
		fmt.Printf("%-28s %s\n", inv.Name, inv.Claim)
	}
	return nil
}
