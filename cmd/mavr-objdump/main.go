// mavr-objdump disassembles an application binary with symbol
// annotations, objdump-style — useful for inspecting generated
// firmware, randomized images, and gadget neighbourhoods.
//
// Usage:
//
//	mavr-objdump [-app testapp | -elf file] [-func name] [-start 0xNNN -n 32]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mavr/internal/asm"
	"mavr/internal/avr"
	"mavr/internal/elfobj"
	"mavr/internal/firmware"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	app := flag.String("app", "testapp", "built-in application profile to generate")
	elfPath := flag.String("elf", "", "disassemble an ELF file instead")
	fn := flag.String("func", "", "disassemble only this function")
	start := flag.Uint64("start", 0, "start byte address (with -n)")
	n := flag.Int("n", 0, "instruction count from -start")
	flag.Parse()

	var elf *elfobj.File
	switch {
	case *elfPath != "":
		raw, err := os.ReadFile(*elfPath)
		if err != nil {
			return err
		}
		f, err := elfobj.Parse(raw)
		if err != nil {
			return err
		}
		elf = f
	default:
		spec, err := profile(*app)
		if err != nil {
			return err
		}
		img, err := firmware.Generate(spec, firmware.ModeMAVR)
		if err != nil {
			return err
		}
		elf = img.ELF
	}

	if *n > 0 {
		fmt.Print(asm.Disassemble(elf.Text, uint32(*start)/2, *n))
		return nil
	}

	funcs := elf.FuncSymbols()
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Value < funcs[j].Value })
	for _, s := range funcs {
		if *fn != "" && s.Name != *fn {
			continue
		}
		fmt.Printf("\n%08x <%s>: (%d bytes)\n", s.Value, s.Name, s.Size)
		pc := s.Value / 2
		end := (s.Value + s.Size) / 2
		for pc < end {
			in := avr.DecodeAt(elf.Text, pc)
			fmt.Printf("  %6x:\t%s\n", pc*2, asm.FormatInstr(in, pc))
			pc += uint32(in.Words)
		}
		if *fn != "" {
			return nil
		}
	}
	if *fn != "" {
		return fmt.Errorf("function %q not found", *fn)
	}
	return nil
}

func profile(name string) (firmware.AppSpec, error) {
	switch name {
	case "testapp":
		return firmware.TestApp(), nil
	case "arduplane":
		return firmware.Arduplane(), nil
	case "arducopter":
		return firmware.Arducopter(), nil
	case "ardurover":
		return firmware.Ardurover(), nil
	}
	return firmware.AppSpec{}, fmt.Errorf("unknown application %q", name)
}
