// mavr-scenario runs, records and verifies the deterministic paper
// scenarios (internal/scenario).
//
// Usage:
//
//	mavr-scenario list
//	mavr-scenario run <name> [-spec file.json] [-o trace.jsonl]
//	mavr-scenario record [-golden dir] [name ...]
//	mavr-scenario verify [-golden dir] [-json] [name ...]
//
// run executes one scenario (a builtin name, or a JSON Spec via
// -spec) and prints its canonical JSONL trace. record replays the
// named scenarios (default: all builtins) and rewrites their golden
// traces. verify replays against the checked-in golden traces and
// exits 2 on the first divergence, printing a structured diff —
// the conformance gate CI runs on every change.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mavr/internal/scenario"
	"mavr/internal/scengen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = list()
	case "run":
		err = run(os.Args[2:])
	case "record":
		err = record(os.Args[2:])
	case "verify":
		var diverged bool
		diverged, err = verify(os.Args[2:])
		if err == nil && diverged {
			os.Exit(2)
		}
	case "-h", "--help", "help":
		usage()
		return
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mavr-scenario:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mavr-scenario list
  mavr-scenario run <name> [-spec file.json] [-o trace.jsonl]
  mavr-scenario record [-golden dir] [name ...]
  mavr-scenario verify [-golden dir] [-json] [name ...]`)
}

func list() error {
	for _, s := range scenario.Builtin() {
		fmt.Printf("%-36s %s\n", s.Name, s.Notes)
	}
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	specPath := fs.String("spec", "", "JSON scenario spec file (instead of a builtin name)")
	out := fs.String("o", "", "write the trace to this file (default stdout)")
	// Accept the documented `run <name> [-o ...]` order: pop a leading
	// positional name before flag parsing stops at it.
	var name string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		name, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if name == "" && fs.NArg() == 1 {
		name = fs.Arg(0)
	}
	var spec scenario.Spec
	switch {
	case *specPath != "":
		raw, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, &spec); err != nil {
			return fmt.Errorf("parsing %s: %w", *specPath, err)
		}
	case name != "":
		var err error
		spec, err = scenario.Lookup(name)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("run needs a builtin scenario name or -spec (see 'mavr-scenario list')")
	}
	res, err := scenario.Run(spec)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := scenario.AppendTrace(w, res.Records); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: %d records, compromised=%v attackLanded=%v epochs=%d\n",
		spec.Name, len(res.Records), res.Verdict.Compromised, res.Verdict.AttackLanded, res.Verdict.Final.Epoch)
	return nil
}

// selectSpecs resolves positional names (default: every builtin).
func selectSpecs(names []string) ([]scenario.Spec, error) {
	if len(names) == 0 {
		return scenario.Builtin(), nil
	}
	var specs []scenario.Spec
	for _, n := range names {
		s, err := scenario.Lookup(n)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}

func goldenPath(dir, name string) string {
	return filepath.Join(dir, name+".jsonl")
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	dir := fs.String("golden", "testdata/golden", "golden trace directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs, err := selectSpecs(fs.Args())
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	for _, spec := range specs {
		res, err := scenario.Run(spec)
		if err != nil {
			return fmt.Errorf("%s: %w", spec.Name, err)
		}
		path := goldenPath(*dir, spec.Name)
		if err := os.WriteFile(path, []byte(res.Trace()), 0o644); err != nil {
			return err
		}
		fmt.Printf("recorded %-36s %4d records -> %s\n", spec.Name, len(res.Records), path)
	}
	return nil
}

func verify(args []string) (diverged bool, err error) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("golden", "testdata/golden", "golden trace directory")
	asJSON := fs.Bool("json", false, "print divergences as JSON")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	specs, err := selectSpecs(fs.Args())
	if err != nil {
		return false, err
	}
	for _, spec := range specs {
		path := goldenPath(*dir, spec.Name)
		golden, err := os.ReadFile(path)
		if err != nil {
			return false, fmt.Errorf("%s: no golden trace (run 'mavr-scenario record %s'): %w", spec.Name, spec.Name, err)
		}
		res, err := scenario.Run(spec)
		if err != nil {
			return false, fmt.Errorf("%s: %w", spec.Name, err)
		}
		// The byte-identity gate and the trace-invariant library report
		// in the same Divergence shape; a golden trace that matches but
		// violates an invariant still fails verification.
		report := func(d *scenario.Divergence) {
			diverged = true
			if *asJSON {
				out, _ := json.Marshal(struct {
					Scenario string               `json:"scenario"`
					Golden   string               `json:"goldenFile"`
					Diff     *scenario.Divergence `json:"diff"`
				}{spec.Name, path, d})
				fmt.Println(string(out))
			} else {
				fmt.Printf("FAIL %s (%s)\n%s", spec.Name, path, d)
			}
		}
		if d := scenario.Compare(string(golden), res.Trace()); d != nil {
			report(d)
			continue
		}
		if ds := scengen.CheckAll(spec, res.Records); len(ds) > 0 {
			for _, d := range ds {
				report(d)
			}
			continue
		}
		fmt.Printf("ok   %-36s %4d records match %s\n", spec.Name, len(res.Records), path)
	}
	return diverged, nil
}
