// mavr-gadgets scans a firmware image for ROP gadgets and prints the
// census plus the paper's Fig. 4/5 gadget listings.
//
// Usage:
//
//	mavr-gadgets [-app testapp|arduplane|arducopter|ardurover] [-elf file]
package main

import (
	"flag"
	"fmt"
	"os"

	"mavr/internal/asm"
	"mavr/internal/elfobj"
	"mavr/internal/firmware"
	"mavr/internal/gadget"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	app := flag.String("app", "testapp", "built-in application profile to generate")
	elfPath := flag.String("elf", "", "scan an ELF file instead of a generated profile")
	max := flag.Int("max", 24, "maximum gadget length in words")
	flag.Parse()

	var image []byte
	switch {
	case *elfPath != "":
		raw, err := os.ReadFile(*elfPath)
		if err != nil {
			return err
		}
		f, err := elfobj.Parse(raw)
		if err != nil {
			return err
		}
		image = f.Text
	default:
		spec, err := profile(*app)
		if err != nil {
			return err
		}
		img, err := firmware.Generate(spec, firmware.ModeMAVR)
		if err != nil {
			return err
		}
		image = img.Flash
	}

	gs := gadget.Scan(image, *max)
	byKind := gadget.CountByKind(gs)
	fmt.Printf("scanned %d bytes: %d ret-gadgets found\n", len(image), len(gs))
	for _, k := range []gadget.Kind{gadget.KindStkMove, gadget.KindWriteMem, gadget.KindPopChain, gadget.KindOther} {
		fmt.Printf("  %-9s %d\n", k, byKind[k])
	}

	if sm, err := gadget.FindStkMove(image); err == nil {
		fmt.Printf("\nGadget 1: stk_move (paper Fig. 4)\n")
		fmt.Print(asm.Disassemble(image, sm.Addr, 4+len(sm.PopRegs)))
	}
	if wm, err := gadget.FindWriteMem(image, 5); err == nil {
		fmt.Printf("\nGadget 2: write_mem_gadget (paper Fig. 5)\n")
		fmt.Print(asm.Disassemble(image, wm.StoreAddr, 4+len(wm.PopRegs)))
	}
	return nil
}

func profile(name string) (firmware.AppSpec, error) {
	switch name {
	case "testapp":
		return firmware.TestApp(), nil
	case "arduplane":
		return firmware.Arduplane(), nil
	case "arducopter":
		return firmware.Arducopter(), nil
	case "ardurover":
		return firmware.Ardurover(), nil
	}
	return firmware.AppSpec{}, fmt.Errorf("unknown application %q", name)
}
