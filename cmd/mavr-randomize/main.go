// mavr-randomize performs the MAVR pipeline on an application binary:
// preprocess (extract symbols + pointers), randomize (shuffle function
// blocks), patch (fix control transfers and function pointers), and
// emit the result.
//
// Usage:
//
//	mavr-randomize [-app testapp] [-elf in.elf] [-seed 1]
//	               [-pre out.mavr] [-hex out.hex]
//	mavr-randomize -armory http://127.0.0.1:8737 -vehicle uav-1 [-epoch 0]
//	               [-armory-key <hex>] [-hex out.hex]
//
// With -pre the preprocessed (symbol-prepended HEX) image ready for the
// external flash chip is written; with -hex the randomized image is
// written as Intel HEX.
//
// With -armory the pipeline runs on a mavr-armory daemon instead: the
// base image is submitted for the given vehicle identity and the
// returned artifact — randomized, statically verified and signed
// server-side, with fleet-unique permutation enforced by the armory's
// ledger — is checked (digest + signature) and optionally written.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mavr/internal/armory"
	"mavr/internal/core"
	"mavr/internal/elfobj"
	"mavr/internal/firmware"
	"mavr/internal/hexfile"
	"mavr/internal/staticverify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	app := flag.String("app", "testapp", "built-in application profile to generate")
	elfPath := flag.String("elf", "", "randomize an ELF file instead of a generated profile")
	seed := flag.Int64("seed", 1, "permutation seed")
	preOut := flag.String("pre", "", "write the preprocessed (prepended-HEX) image here")
	hexOut := flag.String("hex", "", "write the randomized image as Intel HEX here")
	elfOut := flag.String("out-elf", "", "write the randomized image as an ELF (with relocated symbols) here")
	moves := flag.Bool("moves", false, "print the per-function layout diff")
	noVerify := flag.Bool("no-verify", false, "skip the static patch-completeness verification post-pass")
	armoryURL := flag.String("armory", "", "submit to the mavr-armory daemon at this base URL instead of randomizing locally")
	vehicle := flag.String("vehicle", "", "vehicle identity for -armory submissions")
	epoch := flag.Uint64("epoch", 0, "re-randomization epoch for -armory submissions")
	armoryKey := flag.String("armory-key", "", "armory signing key (hex; empty: built-in dev key)")
	flag.Parse()

	var elf *elfobj.File
	switch {
	case *elfPath != "":
		raw, err := os.ReadFile(*elfPath)
		if err != nil {
			return err
		}
		f, err := elfobj.Parse(raw)
		if err != nil {
			return err
		}
		elf = f
	default:
		spec, err := profile(*app)
		if err != nil {
			return err
		}
		img, err := firmware.Generate(spec, firmware.ModeMAVR)
		if err != nil {
			return err
		}
		elf = img.ELF
	}

	if *armoryURL != "" {
		return runArmory(elf, *armoryURL, *vehicle, *epoch, *armoryKey, *hexOut)
	}

	pre, err := core.Preprocess(elf)
	if err != nil {
		return err
	}
	fmt.Printf("preprocess: %d blocks, region [0x%X,0x%X), %d data-section function pointers\n",
		len(pre.Blocks), pre.RegionStart, pre.RegionEnd, len(pre.PtrOffsets))
	fmt.Printf("entropy: %.0f bits\n", core.EntropyBits(len(pre.Blocks)))

	if *preOut != "" {
		f, err := os.Create(*preOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := pre.WriteTo(f); err != nil {
			return err
		}
		fmt.Printf("wrote preprocessed image to %s\n", *preOut)
	}

	r, err := core.Randomize(pre, core.Permutation(rand.New(rand.NewSource(*seed)), len(pre.Blocks)))
	if err != nil {
		return err
	}
	fmt.Printf("randomize: patched %d control transfers, %d function pointers\n",
		r.PatchedTransfers, r.PatchedPointers)

	if !*noVerify {
		rep := staticverify.Verify(pre, r, staticverify.Options{Gadgets: false})
		fmt.Printf("verify: %d transfers, %d vectors, %d pointers proven remapped\n",
			rep.Diff.TransfersChecked, rep.Diff.VectorsChecked, rep.Diff.PointersChecked)
		if !rep.OK() {
			for _, f := range rep.Findings {
				fmt.Fprintln(os.Stderr, f)
			}
			return fmt.Errorf("static verification failed with %d errors; image not written", rep.Errors())
		}
	}

	if *moves {
		for _, m := range r.Moves(pre) {
			fmt.Println("  " + m)
		}
	}

	if *hexOut != "" {
		f, err := os.Create(*hexOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := hexfile.Encode(f, r.Image); err != nil {
			return err
		}
		fmt.Printf("wrote randomized image to %s\n", *hexOut)
	}
	if *elfOut != "" {
		out := &elfobj.File{
			Text:     r.Image,
			Data:     elf.Data,
			DataAddr: elf.DataAddr,
			DataLMA:  elf.DataLMA,
			Symbols:  r.Symbols(pre),
		}
		raw, err := out.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*elfOut, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote randomized ELF to %s\n", *elfOut)
	}
	return nil
}

// runArmory is the client mode: submit the base image, check the
// artifact, print the verification verdict, optionally write the hex.
func runArmory(elf *elfobj.File, url, vehicle string, epoch uint64, keyHex, hexOut string) error {
	if vehicle == "" {
		return fmt.Errorf("-armory requires -vehicle")
	}
	secret := armory.DefaultSecret
	if keyHex != "" {
		key, err := hex.DecodeString(keyHex)
		if err != nil {
			return fmt.Errorf("bad -armory-key: %w", err)
		}
		secret = key
	}
	raw, err := elf.Marshal()
	if err != nil {
		return err
	}
	art, err := armory.NewClient(url, secret).Randomize(raw, vehicle, epoch)
	if err != nil {
		return err
	}
	fmt.Printf("armory: base %s\n", art.BaseDigest)
	fmt.Printf("armory: artifact %s (perm %s, attempt %d, cache hit %v)\n",
		art.ArtifactDigest, art.PermDigest[:16], art.Attempts, art.CacheHit)
	fmt.Printf("armory: signature verified; report: %d findings (%d errors, %d warnings)\n",
		len(art.Report.Findings), art.Report.Errors(), art.Report.Warnings())
	fmt.Printf("verify: %d transfers, %d vectors, %d pointers proven remapped\n",
		art.Report.Diff.TransfersChecked, art.Report.Diff.VectorsChecked, art.Report.Diff.PointersChecked)
	if hexOut != "" {
		f, err := os.Create(hexOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := hexfile.Encode(f, art.Image); err != nil {
			return err
		}
		fmt.Printf("wrote armory artifact to %s\n", hexOut)
	}
	return nil
}

func profile(name string) (firmware.AppSpec, error) {
	switch name {
	case "testapp":
		return firmware.TestApp(), nil
	case "arduplane":
		return firmware.Arduplane(), nil
	case "arducopter":
		return firmware.Arducopter(), nil
	case "ardurover":
		return firmware.Ardurover(), nil
	}
	return firmware.AppSpec{}, fmt.Errorf("unknown application %q", name)
}
