// mavr-randomize performs the MAVR pipeline on an application binary:
// preprocess (extract symbols + pointers), randomize (shuffle function
// blocks), patch (fix control transfers and function pointers), and
// emit the result.
//
// Usage:
//
//	mavr-randomize [-app testapp] [-elf in.elf] [-seed 1]
//	               [-pre out.mavr] [-hex out.hex]
//
// With -pre the preprocessed (symbol-prepended HEX) image ready for the
// external flash chip is written; with -hex the randomized image is
// written as Intel HEX.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mavr/internal/core"
	"mavr/internal/elfobj"
	"mavr/internal/firmware"
	"mavr/internal/hexfile"
	"mavr/internal/staticverify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	app := flag.String("app", "testapp", "built-in application profile to generate")
	elfPath := flag.String("elf", "", "randomize an ELF file instead of a generated profile")
	seed := flag.Int64("seed", 1, "permutation seed")
	preOut := flag.String("pre", "", "write the preprocessed (prepended-HEX) image here")
	hexOut := flag.String("hex", "", "write the randomized image as Intel HEX here")
	elfOut := flag.String("out-elf", "", "write the randomized image as an ELF (with relocated symbols) here")
	moves := flag.Bool("moves", false, "print the per-function layout diff")
	noVerify := flag.Bool("no-verify", false, "skip the static patch-completeness verification post-pass")
	flag.Parse()

	var elf *elfobj.File
	switch {
	case *elfPath != "":
		raw, err := os.ReadFile(*elfPath)
		if err != nil {
			return err
		}
		f, err := elfobj.Parse(raw)
		if err != nil {
			return err
		}
		elf = f
	default:
		spec, err := profile(*app)
		if err != nil {
			return err
		}
		img, err := firmware.Generate(spec, firmware.ModeMAVR)
		if err != nil {
			return err
		}
		elf = img.ELF
	}

	pre, err := core.Preprocess(elf)
	if err != nil {
		return err
	}
	fmt.Printf("preprocess: %d blocks, region [0x%X,0x%X), %d data-section function pointers\n",
		len(pre.Blocks), pre.RegionStart, pre.RegionEnd, len(pre.PtrOffsets))
	fmt.Printf("entropy: %.0f bits\n", core.EntropyBits(len(pre.Blocks)))

	if *preOut != "" {
		f, err := os.Create(*preOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := pre.WriteTo(f); err != nil {
			return err
		}
		fmt.Printf("wrote preprocessed image to %s\n", *preOut)
	}

	r, err := core.Randomize(pre, core.Permutation(rand.New(rand.NewSource(*seed)), len(pre.Blocks)))
	if err != nil {
		return err
	}
	fmt.Printf("randomize: patched %d control transfers, %d function pointers\n",
		r.PatchedTransfers, r.PatchedPointers)

	if !*noVerify {
		rep := staticverify.Verify(pre, r, staticverify.Options{Gadgets: false})
		fmt.Printf("verify: %d transfers, %d vectors, %d pointers proven remapped\n",
			rep.Diff.TransfersChecked, rep.Diff.VectorsChecked, rep.Diff.PointersChecked)
		if !rep.OK() {
			for _, f := range rep.Findings {
				fmt.Fprintln(os.Stderr, f)
			}
			return fmt.Errorf("static verification failed with %d errors; image not written", rep.Errors())
		}
	}

	if *moves {
		for _, m := range r.Moves(pre) {
			fmt.Println("  " + m)
		}
	}

	if *hexOut != "" {
		f, err := os.Create(*hexOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := hexfile.Encode(f, r.Image); err != nil {
			return err
		}
		fmt.Printf("wrote randomized image to %s\n", *hexOut)
	}
	if *elfOut != "" {
		out := &elfobj.File{
			Text:     r.Image,
			Data:     elf.Data,
			DataAddr: elf.DataAddr,
			DataLMA:  elf.DataLMA,
			Symbols:  r.Symbols(pre),
		}
		raw, err := out.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*elfOut, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote randomized ELF to %s\n", *elfOut)
	}
	return nil
}

func profile(name string) (firmware.AppSpec, error) {
	switch name {
	case "testapp":
		return firmware.TestApp(), nil
	case "arduplane":
		return firmware.Arduplane(), nil
	case "arducopter":
		return firmware.Arducopter(), nil
	case "ardurover":
		return firmware.Ardurover(), nil
	}
	return firmware.AppSpec{}, fmt.Errorf("unknown application %q", name)
}
