// determinism-vet adapts internal/lint/determinism to the `go vet
// -vettool` unit-checker protocol, without depending on
// golang.org/x/tools. Run it as:
//
//	go vet -vettool=$(pwd)/determinism-vet ./...
//
// The go command invokes the tool once per package with a JSON config
// file describing the unit of work (file list, import map, export-data
// locations). The contract, distilled from cmd/go/internal/work:
//
//   - `determinism-vet -V=full` must print "determinism-vet version
//     <v>" so the build cache can fingerprint the tool;
//   - `determinism-vet <cfg>.cfg` must lint the unit, write the (here
//     empty) facts file named by VetxOutput, print diagnostics to
//     stderr and exit nonzero iff there were any.
//
// Packages outside the deterministic set exit immediately; for the
// rest the tool typechecks against the compiler's export data so the
// map-iteration check has real types, degrading to the syntactic
// checks when export data is unavailable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"mavr/internal/lint/determinism"
)

const version = "determinism-vet version v1.1.0"

var includeTests = flag.Bool("dettests", false,
	"also lint _test.go files in deterministic packages (//mavr:wallclock still opts a file out)")

func main() {
	if len(os.Args) == 2 && (os.Args[1] == "-V=full" || os.Args[1] == "-V") {
		fmt.Println(version)
		return
	}
	// `go vet` probes the tool's flag set before dispatching units and
	// forwards matching flags from its own command line.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		printFlagDefs()
		return
	}
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: determinism-vet [-dettests] vet.cfg (invoked by go vet -vettool)")
		os.Exit(2)
	}
	diags, err := runUnit(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// printFlagDefs answers the `-flags` probe: a JSON array in the shape
// cmd/go expects (mirroring x/tools' analysisflags) so `go vet
// -vettool=determinism-vet -dettests ./...` forwards the flag.
func printFlagDefs() {
	type def struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	var defs []def
	flag.VisitAll(func(f *flag.Flag) {
		defs = append(defs, def{Name: f.Name, Bool: true, Usage: f.Usage})
	})
	out, _ := json.Marshal(defs)
	fmt.Println(string(out))
}

// vetConfig mirrors the fields of cmd/go's vet config JSON that this
// tool consumes.
type vetConfig struct {
	ImportPath                string
	Dir                       string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) ([]determinism.Diagnostic, error) {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}

	// The go command requires the facts file to exist even when the
	// unit is skipped; this tool exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	// Test variants arrive as "pkg [pkg.test]" units (and external test
	// packages as "pkg_test [pkg.test]"); normalize back to the base
	// import path so -dettests covers them.
	ip := cfg.ImportPath
	if i := strings.Index(ip, " ["); i >= 0 {
		ip = ip[:i]
	}
	ip = strings.TrimSuffix(ip, "_test")
	if cfg.VetxOnly || !determinism.DeterministicImportPath(ip) {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{Types: make(map[ast.Expr]types.TypeAndValue)}
	tconf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			if mapped, ok := cfg.ImportMap[path]; ok {
				path = mapped
			}
			file, ok := cfg.PackageFile[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}),
		Error: func(error) {}, // collect what typechecks; partial info is fine
	}
	// A failed typecheck is not fatal either way: the syntactic checks
	// need no types, and info retains whatever did resolve.
	_, _ = tconf.Check(cfg.ImportPath, fset, files, info)

	return determinism.Check(fset, files, info,
		determinism.Options{IncludeTests: *includeTests}), nil
}
