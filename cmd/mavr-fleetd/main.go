// mavr-fleetd hosts a fleet of simulated UAVs behind one UDP socket.
//
// Each vehicle is an independent board.System flying the vulnerable
// test application (optionally under MAVR protection), advanced in
// simulated time by its own goroutine and paced against the wall
// clock. Ground stations — including mavr-attack -connect — speak the
// internal/netlink datagram protocol: hello to subscribe to a
// vehicle's telemetry, data datagrams both ways, bye to leave.
//
// Usage:
//
//	mavr-fleetd [-n 8] [-addr 127.0.0.1:14550] [-metrics 127.0.0.1:9090]
//	            [-protect] [-armory http://127.0.0.1:8737] [-armory-key <hex>]
//	            [-seed 1] [-rate 1.0] [-step 10ms]
//	            [-drop 0.0] [-dup 0.0] [-latency 0] [-jitter 0] [-simseed 1]
//	            [-chaos-seed 0] [-chaos-panic 0] [-chaos-hang 0] [-chaos-stall 0]
//	            [-chaos-partition-down 0] [-chaos-partition-up 0] [-chaos-corrupt 0]
//	            [-restart-budget 8] [-session-timeout 5s] [-duration 0]
//
// The -chaos-* flags run the fleet under the deterministic chaos
// engine (internal/chaos): scheduled driver panics are recovered by
// the supervisor within -restart-budget consecutive restarts per
// vehicle, after which the vehicle is parked as degraded (visible in
// -metrics and the status line).
//
// With -armory, protected masters provision their randomized images
// from a mavr-armory daemon at the given base URL: each boot and each
// re-randomization-on-detection POSTs the fleet's base firmware with
// the vehicle's identity and flashes the signed, pre-verified artifact
// that comes back. An unreachable or rejecting armory degrades
// gracefully to on-board randomization (the fleet.armory_fallbacks
// metric counts how often).
//
// The -metrics endpoint serves the fleet's counters as plain text
// ("name value" per line) over HTTP at /metrics (any path works).
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mavr/internal/armory"
	"mavr/internal/board"
	"mavr/internal/chaos"
	"mavr/internal/firmware"
	"mavr/internal/netlink"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 8, "number of simulated vehicles (system ids 1..n)")
	addr := flag.String("addr", "127.0.0.1:14550", "UDP listen address for telemetry")
	metricsAddr := flag.String("metrics", "", "serve plain-text metrics over HTTP on this address (empty: disabled)")
	protect := flag.Bool("protect", false, "boot MAVR-protected boards instead of unprotected APMs")
	armoryURL := flag.String("armory", "", "provision randomized images from the mavr-armory daemon at this base URL (requires -protect)")
	armoryKey := flag.String("armory-key", "", "armory artifact signing key (hex; empty: built-in dev key)")
	seed := flag.Int64("seed", 1, "master randomization seed base (vehicle i adds i)")
	rate := flag.Float64("rate", 1.0, "simulated seconds per wall second (0: free-run)")
	step := flag.Duration("step", 10*time.Millisecond, "simulated time per vehicle tick")
	drop := flag.Float64("drop", 0, "link simulator: datagram drop probability")
	dup := flag.Float64("dup", 0, "link simulator: datagram duplication probability")
	latency := flag.Duration("latency", 0, "link simulator: base one-way latency")
	jitter := flag.Duration("jitter", 0, "link simulator: additional uniform random delay")
	simSeed := flag.Int64("simseed", 1, "link simulator seed (fixed seed: same impairment schedule)")
	var ch chaos.Config
	flag.Int64Var(&ch.Seed, "chaos-seed", 0, "chaos schedule seed (same seed: same faults)")
	flag.Float64Var(&ch.PanicRate, "chaos-panic", 0, "chaos: per-tick board driver panic probability")
	flag.Float64Var(&ch.HangRate, "chaos-hang", 0, "chaos: per-tick board hang probability")
	flag.Float64Var(&ch.StallRate, "chaos-stall", 0, "chaos: per-tick sim-clock stall probability")
	flag.Float64Var(&ch.PartitionDownRate, "chaos-partition-down", 0, "chaos: per-window downlink partition probability")
	flag.Float64Var(&ch.PartitionUpRate, "chaos-partition-up", 0, "chaos: per-window uplink partition probability")
	flag.Float64Var(&ch.CorruptRate, "chaos-corrupt", 0, "chaos: per-datagram corruption probability")
	restartBudget := flag.Int("restart-budget", 8, "supervised restarts per vehicle before it is parked as degraded (negative: no supervision)")
	sessionTimeout := flag.Duration("session-timeout", 5*time.Second, "expire sessions with no uplink traffic after this long")
	duration := flag.Duration("duration", 0, "exit after this much wall time (0: run until signalled)")
	status := flag.Duration("status", 5*time.Second, "status line interval (0: quiet)")
	flag.Parse()

	var provision func(sysID byte, epoch int) (*board.Provisioned, error)
	var fleetImg *firmware.Image
	if *armoryURL != "" {
		if !*protect {
			return fmt.Errorf("-armory requires -protect (unprotected boards never randomize)")
		}
		secret := armory.DefaultSecret
		if *armoryKey != "" {
			key, err := hex.DecodeString(*armoryKey)
			if err != nil {
				return fmt.Errorf("bad -armory-key: %w", err)
			}
			secret = key
		}
		img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
		if err != nil {
			return err
		}
		elf, err := img.ELF.Marshal()
		if err != nil {
			return err
		}
		fleetImg = img
		client := armory.NewClient(*armoryURL, secret)
		provision = func(sysID byte, epoch int) (*board.Provisioned, error) {
			art, err := client.Randomize(elf, fmt.Sprintf("uav-%d", sysID), uint64(epoch))
			if err != nil {
				return nil, err
			}
			return &board.Provisioned{Image: art.Image, Perm: art.Perm}, nil
		}
	}

	fleet, err := netlink.NewFleet(netlink.FleetConfig{
		Vehicles:   *n,
		Addr:       *addr,
		Firmware:   fleetImg,
		Protected:  *protect,
		MasterSeed: *seed,
		Provision:  provision,
		Step:       *step,
		Rate:       *rate,
		Sim: netlink.SimConfig{
			Seed:     *simSeed,
			DropRate: *drop,
			DupRate:  *dup,
			Latency:  *latency,
			Jitter:   *jitter,
		},
		Chaos:          ch,
		RestartBudget:  *restartBudget,
		SessionTimeout: *sessionTimeout,
	})
	if err != nil {
		return err
	}
	if err := fleet.Start(); err != nil {
		return err
	}
	defer fleet.Close()
	fmt.Printf("fleetd: %d vehicle(s) on %s (rate=%g, step=%v, protect=%v)\n",
		*n, fleet.Addr(), *rate, *step, *protect)

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ln.Close()
		srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, fleet.MetricsText())
		})}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("fleetd: metrics on http://%s/metrics\n", ln.Addr())
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	var timeout <-chan time.Time
	if *duration > 0 {
		timeout = time.After(*duration)
	}
	var ticker *time.Ticker
	var tick <-chan time.Time
	if *status > 0 {
		ticker = time.NewTicker(*status)
		defer ticker.Stop()
		tick = ticker.C
	}

	for {
		select {
		case s := <-sigs:
			fmt.Printf("fleetd: %v, shutting down\n", s)
			return fleet.Close()
		case <-timeout:
			fmt.Println("fleetd: duration elapsed, shutting down")
			return fleet.Close()
		case <-tick:
			printStatus(fleet)
		}
	}
}

func printStatus(f *netlink.Fleet) {
	var minSim, maxSim time.Duration
	alive, restarts, degraded := 0, 0, 0
	for i, v := range f.Vehicles() {
		s := v.Snapshot()
		if s.Running {
			alive++
		}
		restarts += s.Restarts
		if s.Degraded {
			degraded++
		}
		if i == 0 || s.SimTime < minSim {
			minSim = s.SimTime
		}
		if s.SimTime > maxSim {
			maxSim = s.SimTime
		}
	}
	fmt.Printf("fleetd: sim=[%v..%v] alive=%d/%d restarts=%d degraded=%d sessions=%d expired=%d\n",
		minSim.Round(time.Millisecond), maxSim.Round(time.Millisecond),
		alive, len(f.Vehicles()), restarts, degraded, f.Sessions(), f.ExpiredSessions())
}
