// mavr-verify statically verifies a MAVR randomization outcome: it
// recovers a conservative CFG from the randomized image, diffs it
// against the original to prove every direct transfer, vector entry
// and tabled function pointer was patched onto a relocated function
// entry, and audits which ret-gadgets survive randomization unchanged.
//
// Usage:
//
//	mavr-verify [-app testapp] [-elf in.elf] [-seed 1]        pipeline mode
//	mavr-verify -elf orig.elf -randomized rnd.elf             compare mode
//
// Pipeline mode runs preprocess + randomize internally and verifies the
// result; compare mode verifies an already-randomized ELF (as written
// by mavr-randomize -out-elf) against its original. -skip-patch and
// -skip-pointer deliberately revert one rewrite before verifying — a
// fault injector that demonstrates the defect the verifier exists to
// catch.
//
// Exit status is nonzero when any error-severity finding is reported.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"mavr/internal/core"
	"mavr/internal/elfobj"
	"mavr/internal/firmware"
	"mavr/internal/staticverify"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run() (int, error) {
	app := flag.String("app", "testapp", "built-in application profile to generate")
	elfPath := flag.String("elf", "", "verify an ELF file instead of a generated profile")
	rndPath := flag.String("randomized", "", "already-randomized ELF to verify against the original (compare mode)")
	seed := flag.Int64("seed", 1, "permutation seed (pipeline mode)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	noGadgets := flag.Bool("no-gadgets", false, "skip the residual gadget audit")
	vsaOn := flag.Bool("vsa", false, "run value-set analysis: resolve indirect-transfer target sets and prove per-function stack discipline")
	skipPatch := flag.Int("skip-patch", -1, "fault injection: revert the n-th patched transfer before verifying")
	skipPtr := flag.Int("skip-pointer", -1, "fault injection: revert the n-th patched function pointer before verifying")
	flag.Parse()

	elf, err := loadELF(*elfPath, *app)
	if err != nil {
		return 1, err
	}
	pre, err := core.Preprocess(elf)
	if err != nil {
		return 1, err
	}

	var r *core.Randomized
	if *rndPath != "" {
		raw, err := os.ReadFile(*rndPath)
		if err != nil {
			return 1, err
		}
		rf, err := elfobj.Parse(raw)
		if err != nil {
			return 1, err
		}
		r, err = reconstruct(pre, rf)
		if err != nil {
			return 1, err
		}
	} else {
		r, err = core.Randomize(pre, core.Permutation(rand.New(rand.NewSource(*seed)), len(pre.Blocks)))
		if err != nil {
			return 1, err
		}
	}

	if *skipPatch >= 0 {
		addr, err := staticverify.RevertPatch(pre, r, *skipPatch)
		if err != nil {
			return 1, err
		}
		fmt.Fprintf(os.Stderr, "fault injection: reverted transfer patch at 0x%X\n", addr)
	}
	if *skipPtr >= 0 {
		off, err := staticverify.RevertPointerPatch(pre, r, *skipPtr)
		if err != nil {
			return 1, err
		}
		fmt.Fprintf(os.Stderr, "fault injection: reverted pointer patch at 0x%X\n", off)
	}

	opts := staticverify.DefaultOptions()
	opts.Gadgets = !*noGadgets
	opts.VSA = *vsaOn
	rep := staticverify.Verify(pre, r, opts)

	if *jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			return 1, err
		}
	} else if err := rep.WriteText(os.Stdout); err != nil {
		return 1, err
	}
	if !rep.OK() {
		return 2, nil
	}
	return 0, nil
}

func loadELF(path, app string) (*elfobj.File, error) {
	if path != "" {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return elfobj.Parse(raw)
	}
	var spec firmware.AppSpec
	switch app {
	case "testapp":
		spec = firmware.TestApp()
	case "arduplane":
		spec = firmware.Arduplane()
	case "arducopter":
		spec = firmware.Arducopter()
	case "ardurover":
		spec = firmware.Ardurover()
	default:
		return nil, fmt.Errorf("unknown application %q", app)
	}
	img, err := firmware.Generate(spec, firmware.ModeMAVR)
	if err != nil {
		return nil, err
	}
	return img.ELF, nil
}

// reconstruct rebuilds the Randomized record a prior mavr-randomize run
// produced, by matching the randomized ELF's relocated function symbols
// back to the original block list by name.
func reconstruct(pre *core.Preprocessed, rf *elfobj.File) (*core.Randomized, error) {
	if len(rf.Text) != len(pre.Image) {
		return nil, fmt.Errorf("randomized image is %d bytes, original %d", len(rf.Text), len(pre.Image))
	}
	byName := make(map[string]uint32)
	for _, s := range rf.FuncSymbols() {
		byName[s.Name] = s.Value
	}
	r := &core.Randomized{
		Image:    rf.Text,
		NewStart: make([]uint32, len(pre.Blocks)),
		Perm:     make([]int, len(pre.Blocks)),
	}
	for i, b := range pre.Blocks {
		v, ok := byName[b.Name]
		if !ok {
			return nil, fmt.Errorf("randomized ELF has no symbol for function %q", b.Name)
		}
		r.NewStart[i] = v
	}
	// Recover the permutation from the new layout ordering: the i-th
	// slot (by address) holds the block whose NewStart ranks i-th.
	order := make([]int, len(pre.Blocks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return r.NewStart[order[a]] < r.NewStart[order[b]] })
	for slot, blk := range order {
		r.Perm[slot] = blk
	}
	return r, nil
}
