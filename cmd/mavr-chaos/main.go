// mavr-chaos soaks the live fleet under the deterministic chaos
// engine (internal/chaos) and verifies it survives: board panics are
// restarted by the supervisor, partitions and datagram corruption stay
// classified as link trouble, sessions churn without leaking, and
// shutdown drains every goroutine. One process run covers several
// seeds; each seed is an independent fleet brought up, battered and
// torn down with leak accounting around it.
//
// Usage:
//
//	mavr-chaos [-seeds 1,2,3] [-vehicles 4] [-stations 2] [-duration 5s]
//	           [-panic 0.003] [-hang 0.002] [-stall 0.002]
//	           [-partition-down 0.08] [-partition-up 0.03] [-window 64]
//	           [-corrupt 0.03] [-churn 0.1] [-drop 0]
//	           [-budget 64] [-protect] [-rate 0] [-step 10ms]
//	           [-attack] [-silence 300ms] [-v]
//	mavr-chaos -schedule 500 [-seeds 1,2,3] [-vehicles 4]
//
// -schedule prints the pure fault schedule (board events + link
// digest) for each seed instead of running a soak: the output is a
// deterministic function of (seed, vehicles, ticks), so CI runs it
// twice and byte-compares.
//
// -attack injects a stale V2 payload at vehicle 1 mid-soak (forcing
// -protect) and requires the ground station to detect the resulting
// crash through whatever loss and chaos the link is running — the
// paper's detection story must survive an impaired link.
//
// Exit status: 0 if every seed's soak passed all checks, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mavr/internal/attack"
	"mavr/internal/chaos"
	"mavr/internal/firmware"
	"mavr/internal/gcs"
	"mavr/internal/netlink"
)

type options struct {
	seeds    []int64
	vehicles int
	stations int
	duration time.Duration
	budget   int
	protect  bool
	rate     float64
	step     time.Duration
	drop     float64
	attack   bool
	silence  time.Duration
	verbose  bool

	chaos chaos.Config // Seed filled per soak
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mavr-chaos:", err)
		os.Exit(1)
	}
}

func run() error {
	var o options
	seeds := flag.String("seeds", "1,2,3", "comma-separated chaos seeds; each runs an independent soak")
	flag.IntVar(&o.vehicles, "vehicles", 4, "vehicles per fleet")
	flag.IntVar(&o.stations, "stations", 2, "churning ground stations (all watching vehicle 1 — duplicate-sysid joins)")
	flag.DurationVar(&o.duration, "duration", 5*time.Second, "wall-clock soak length per seed")
	flag.Float64Var(&o.chaos.PanicRate, "panic", 0.003, "per-tick board driver panic probability")
	flag.Float64Var(&o.chaos.HangRate, "hang", 0.002, "per-tick board hang probability")
	flag.Float64Var(&o.chaos.StallRate, "stall", 0.002, "per-tick sim-clock stall probability")
	flag.Float64Var(&o.chaos.PartitionDownRate, "partition-down", 0.08, "per-window downlink partition probability")
	flag.Float64Var(&o.chaos.PartitionUpRate, "partition-up", 0.03, "per-window uplink partition probability")
	flag.IntVar(&o.chaos.PartitionWindow, "window", 64, "partition window length in datagram sequence numbers")
	flag.Float64Var(&o.chaos.CorruptRate, "corrupt", 0.03, "per-datagram corruption probability")
	flag.Float64Var(&o.chaos.ChurnRate, "churn", 0.1, "per-interval station churn probability")
	flag.Float64Var(&o.drop, "drop", 0, "link simulator datagram drop probability (both directions)")
	flag.IntVar(&o.budget, "budget", 64, "supervised restart budget per vehicle")
	flag.BoolVar(&o.protect, "protect", false, "boot MAVR-protected boards")
	flag.Float64Var(&o.rate, "rate", 0, "simulated seconds per wall second (0: free-run)")
	flag.DurationVar(&o.step, "step", 10*time.Millisecond, "simulated time per vehicle tick")
	flag.BoolVar(&o.attack, "attack", false, "inject a stale V2 mid-soak and require detection (forces -protect)")
	flag.DurationVar(&o.silence, "silence", 300*time.Millisecond, "vehicle-silence detection threshold (sim time)")
	flag.BoolVar(&o.verbose, "v", false, "per-event progress output")
	schedule := flag.Uint64("schedule", 0, "print the pure fault schedule for this many ticks instead of soaking")
	flag.Parse()

	for _, s := range strings.Split(*seeds, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("bad -seeds entry %q: %w", s, err)
		}
		o.seeds = append(o.seeds, n)
	}
	if len(o.seeds) == 0 {
		return fmt.Errorf("no seeds")
	}
	if o.attack {
		o.protect = true
	}

	if *schedule > 0 {
		for _, seed := range o.seeds {
			cfg := o.chaos
			cfg.Seed = seed
			fmt.Print(cfg.ScheduleTrace(o.vehicles, *schedule))
		}
		return nil
	}

	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		return err
	}

	failed := 0
	for _, seed := range o.seeds {
		if err := soak(o, seed, img); err != nil {
			failed++
			fmt.Printf("chaos: seed=%d FAIL: %v\n", seed, err)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d/%d seeds failed", failed, len(o.seeds))
	}
	fmt.Printf("chaos: all %d seed(s) survived\n", len(o.seeds))
	return nil
}

// soak runs one fleet under one seed and checks every survival
// property: telemetry through crashes, link faults never escalating to
// a compromise verdict, a real attack (when asked) still detected, and
// a clean drain with zero leaked goroutines or sessions.
func soak(o options, seed int64, img *firmware.Image) error {
	baseline := runtime.NumGoroutine()

	cfg := o.chaos
	cfg.Seed = seed
	f, err := netlink.NewFleet(netlink.FleetConfig{
		Vehicles:      o.vehicles,
		Firmware:      img,
		Protected:     o.protect,
		MasterSeed:    seed,
		Step:          o.step,
		Rate:          o.rate,
		Sim:           netlink.SimConfig{Seed: seed, DropRate: o.drop, DupRate: 0},
		Chaos:         cfg,
		RestartBudget: o.budget,
	})
	if err != nil {
		return err
	}
	if err := f.Start(); err != nil {
		return err
	}
	defer f.Close()

	// One steady observer per vehicle.
	observers := make([]*netlink.Client, o.vehicles)
	for i := range observers {
		c, err := netlink.DialClient(f.Addr().String(), netlink.ClientConfig{SysID: byte(i + 1)})
		if err != nil {
			return err
		}
		defer c.Close()
		observers[i] = c
	}

	// Churning stations all watch vehicle 1: duplicate-sysid joins plus
	// continuous session setup/teardown pressure, scheduled by the same
	// pure engine as everything else.
	churners := make([]*netlink.Client, o.stations)
	defer func() {
		for _, c := range churners {
			if c != nil {
				c.Close()
			}
		}
	}()
	var churnCycles int

	var atk *attacker
	if o.attack {
		atk, err = newAttacker(img)
		if err != nil {
			return err
		}
	}

	end := time.Now().Add(o.duration)
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	var tick uint64
	for now := range ticker.C {
		if now.After(end) {
			break
		}
		tick++
		for s := range churners {
			if !cfg.Churn(uint64(s), tick) {
				continue
			}
			churnCycles++
			if churners[s] != nil {
				churners[s].Close()
				churners[s] = nil
				continue
			}
			c, err := netlink.DialClient(f.Addr().String(), netlink.ClientConfig{SysID: 1})
			if err != nil {
				return fmt.Errorf("churn redial: %w", err)
			}
			churners[s] = c
		}
		if atk != nil && !atk.sent && f.Vehicle(1).Snapshot().SimTime > 200*time.Millisecond {
			atk.inject(observers[0])
			if o.verbose {
				fmt.Printf("chaos: seed=%d injected stale V2 at vehicle 1\n", seed)
			}
		}
		if atk != nil && atk.sent && !atk.detected {
			// Uplink loss or a partition may have eaten the datagram:
			// keep resending until the ground station sees the crash.
			mon := observers[0].Monitor()
			if mon.VehicleSilent(o.silence) {
				atk.detected = true
				if o.verbose {
					fmt.Printf("chaos: seed=%d detection confirmed\n", seed)
				}
			} else if time.Since(atk.lastSend) > 500*time.Millisecond {
				atk.inject(observers[0])
			}
		}
	}

	// Survival checks while everything is still running.
	var restarts, degraded int
	var minSim time.Duration
	for i, v := range f.Vehicles() {
		s := v.Snapshot()
		restarts += s.Restarts
		if s.Degraded {
			degraded++
		}
		if i == 0 || s.SimTime < minSim {
			minSim = s.SimTime
		}
	}
	var errs []string
	if degraded > 0 {
		errs = append(errs, fmt.Sprintf("%d vehicle(s) exhausted the restart budget", degraded))
	}
	for i, c := range observers {
		mon := c.Monitor()
		if mon.Pulses == 0 {
			errs = append(errs, fmt.Sprintf("vehicle %d: no telemetry at all", i+1))
		}
		if mon.Garbage > 0 || mon.HeartbeatErrors > 0 {
			errs = append(errs, fmt.Sprintf("vehicle %d: corruption leaked past the checksum (garbage=%d hbErr=%d)",
				i+1, mon.Garbage, mon.HeartbeatErrors))
		}
		// Pure link/board-restart faults must never read as compromise.
		// A real injected attack is the one allowed (and required) hit.
		if h := c.Health(o.silence); h == gcs.HealthCompromised && (atk == nil || i != 0) {
			errs = append(errs, fmt.Sprintf("vehicle %d: chaos misread as compromise", i+1))
		}
	}
	if atk != nil && !atk.detected {
		errs = append(errs, "injected V2 went undetected through the impaired link")
	}

	for _, c := range observers {
		c.Close()
	}
	for s, c := range churners {
		if c != nil {
			c.Close()
			churners[s] = nil
		}
	}
	if err := f.Close(); err != nil {
		errs = append(errs, fmt.Sprintf("drain: %v", err))
	}
	if n := f.Sessions(); n != 0 {
		errs = append(errs, fmt.Sprintf("%d session(s) survived Close", n))
	}
	leakEnd := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(leakEnd) {
			errs = append(errs, fmt.Sprintf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline))
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	if len(errs) > 0 {
		return fmt.Errorf("%s", strings.Join(errs, "; "))
	}
	detected := ""
	if atk != nil {
		detected = " attack-detected"
	}
	fmt.Printf("chaos: seed=%d ok sim=%v restarts=%d churns=%d sessions-expired=%d%s\n",
		seed, minSim.Round(time.Millisecond), restarts, churnCycles, f.ExpiredSessions(), detected)
	return nil
}

// attacker holds the pre-built stale V2 payload (analyzed from the
// public unrandomized image — the paper's threat model) and its
// delivery state.
type attacker struct {
	frame    []byte
	sent     bool
	detected bool
	lastSend time.Time
}

func newAttacker(img *firmware.Image) (*attacker, error) {
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		return nil, err
	}
	payload, err := attack.BuildV2(a, attack.GyroCfgWrite(0x5A))
	if err != nil {
		return nil, err
	}
	return &attacker{frame: payload}, nil
}

func (a *attacker) inject(c *netlink.Client) {
	c.SendFrame(attack.Frame(a.frame))
	a.sent = true
	a.lastSend = time.Now()
}
