// Ablations: the design alternatives the paper discusses and rejects,
// each demonstrated on the simulation — the software-only deployment
// (§VIII-A), the fixed-location serial bootloader versus hardware ISP
// (§VI-B4), random inter-function padding (§VIII-B), stack canaries
// (§IX) and the randomization-frequency/flash-endurance tradeoff (§V-C).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"mavr/internal/attack"
	"mavr/internal/avr"
	"mavr/internal/board"
	"mavr/internal/core"
	"mavr/internal/firmware"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		return err
	}
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		return err
	}

	// --- §VI-B4: bootloader gadgets survive randomization. ---
	fmt.Println("§VI-B4 — fixed serial bootloader vs hardware ISP")
	boot := *a
	if err := boot.UseFixedGadgets(img.Bootloader, firmware.BootloaderStart); err != nil {
		return err
	}
	payload, err := attack.BuildV1(&boot, attack.GyroCfgWrite(0x6A))
	if err != nil {
		return err
	}
	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	landed := 0
	const trials = 5
	for i := 0; i < trials; i++ {
		r, err := core.Randomize(pre, core.Permutation(rng, len(pre.Blocks)))
		if err != nil {
			return err
		}
		full := img.FullFlash()
		copy(full, r.Image)
		copy(full[firmware.BootloaderStart:], img.Bootloader)
		sim, err := attack.NewSim(full)
		if err != nil {
			return err
		}
		_ = sim.Deliver(attack.Frame(payload), 300_000)
		if sim.CPU.Data[firmware.AddrGyroCfg] == 0x6A {
			landed++
		}
	}
	fmt.Printf("  bootloader-gadget write landed on %d/%d randomized layouts\n", landed, trials)
	ispSpec := firmware.TestApp()
	ispSpec.Bootloader = false
	ispImg, err := firmware.Generate(ispSpec, firmware.ModeMAVR)
	if err != nil {
		return err
	}
	ispA, err := attack.Analyze(ispImg.ELF)
	if err != nil {
		return err
	}
	if err := ispA.UseFixedGadgets(nil, firmware.BootloaderStart); err != nil {
		fmt.Printf("  hardware-ISP build: %v (no fixed gadgets exist)\n\n", err)
	}

	// --- §VIII-A: software-only deployment. ---
	fmt.Println("§VIII-A — software-only (flash-time) randomization")
	dump := func(seed int64) []byte {
		sys := board.NewSystem(board.SystemConfig{SoftwareOnly: true, SoftwareSeed: seed})
		if err := sys.FlashFirmware(img); err != nil {
			log.Fatal(err)
		}
		if _, err := sys.Boot(); err != nil {
			log.Fatal(err)
		}
		d, _ := sys.App.ReadFlashExternally()
		return d
	}
	x, y := dump(3), dump(3)
	same := true
	for i := range x {
		if x[i] != y[i] {
			same = false
			break
		}
	}
	fmt.Printf("  layout identical across reflashes: %v (failed attempts leak durable information)\n", same)
	fmt.Printf("  no readout fuse: debugger dump succeeded (%d bytes)\n", len(x))
	fixed := core.SimulateBruteForceFixed(rng, 4, 2000)
	rer := core.SimulateBruteForceRerandomized(rng, 4, 2000)
	fmt.Printf("  brute force at n=4: fixed layout %.1f attempts vs MAVR %.1f\n\n",
		fixed.MeanAttempts, rer.MeanAttempts)

	// --- §VIII-B: padding entropy. ---
	fmt.Println("§VIII-B — random inter-function padding")
	perm := core.EntropyBits(800)
	pad := core.PaddingEntropyBits(800, (262144-177556)/2)
	fmt.Printf("  permutation alone: %.0f bits; padding could add %.0f more — unnecessary\n\n", perm, pad)

	// --- §IX: stack canary runtime cost. ---
	fmt.Println("§IX — stack canaries (runtime checks MAVR avoids)")
	cycles := func(canary bool) uint64 {
		spec := firmware.TestApp()
		spec.StackCanaries = canary
		ci, err := firmware.Generate(spec, firmware.ModeMAVR)
		if err != nil {
			log.Fatal(err)
		}
		var handler uint32
		for _, s := range ci.ELF.FuncSymbols() {
			if s.Name == "handle_param_set" {
				handler = s.Value / 2
			}
		}
		sim, err := attack.NewSim(ci.Flash)
		if err != nil {
			log.Fatal(err)
		}
		sim.SendFrame(attack.Frame(make([]byte, 23)))
		ok, _ := sim.CPU.RunUntil(5_000_000, func(c *avr.CPU) bool { return c.PC == handler })
		if !ok {
			log.Fatal("handler never reached")
		}
		start := sim.CPU.Cycles
		sp := sim.CPU.SP()
		if ok, _ = sim.CPU.RunUntil(100_000, func(c *avr.CPU) bool { return c.SP() > sp }); !ok {
			log.Fatal("handler never returned")
		}
		return sim.CPU.Cycles - start
	}
	plain, withCanary := cycles(false), cycles(true)
	fmt.Printf("  handler cost: %d cycles plain, %d with canary (+%d per packet, on a 96%%-utilized CPU)\n",
		plain, withCanary, withCanary-plain)
	fmt.Printf("  and a canary detection cannot recover in flight — MAVR's reflash can\n\n")

	// --- §V-C: randomization frequency vs flash endurance. ---
	fmt.Println("§V-C — randomization frequency vs 10,000-cycle flash endurance")
	for _, every := range []int{1, 5, 20} {
		sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{RandomizeEvery: every, Seed: int64(every)}})
		if err := sys.FlashFirmware(img); err != nil {
			return err
		}
		const boots = 40
		for j := 0; j < boots; j++ {
			if _, err := sys.Boot(); err != nil {
				return err
			}
		}
		used := sys.Master.Stats().ProgramCycles
		fmt.Printf("  randomize every %2d boots: %2d program cycles per %d boots -> ~%d-boot lifetime\n",
			every, used, boots, board.FlashEndurance*boots/used)
	}

	// --- §VII-B1: production programming path. ---
	ap, err := firmware.Generate(firmware.Arduplane(), firmware.ModeMAVR)
	if err != nil {
		return err
	}
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{Seed: 1, ProgramBaud: board.ProductionProgramBaud}})
	if err := sys.FlashFirmware(ap); err != nil {
		return err
	}
	rep, err := sys.Boot()
	if err != nil {
		return err
	}
	fmt.Printf("\n§VII-B1 — production PCB estimate: ArduPlane reprograms in %v (paper estimates ~4s)\n",
		rep.Total.Round(time.Millisecond))
	return nil
}
