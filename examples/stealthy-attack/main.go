// Stealthy attack demo (paper §IV): run the three ROP attack
// generations against an unprotected APM board and show what the ground
// station observes, including the Fig. 6 stack progression of the
// stealthy V2 attack.
package main

import (
	"fmt"
	"log"
	"time"

	"mavr/internal/attack"
	"mavr/internal/board"
	"mavr/internal/firmware"
	"mavr/internal/gcs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		return err
	}
	// The attacker analyzes the binary they have (threat model §IV-A).
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		return err
	}
	fmt.Printf("attacker analysis of the unprotected binary:\n")
	fmt.Printf("  %d ret-gadgets; stk_move at byte 0x%X (pops %v);\n",
		a.GadgetCount, a.StkMove.Addr*2, a.StkMove.PopRegs)
	fmt.Printf("  write_mem at byte 0x%X (stores r%d,r%d,r%d; %d-register pop chain)\n",
		a.WriteMem.StoreAddr*2, a.WriteMem.StoreRegs[0], a.WriteMem.StoreRegs[1],
		a.WriteMem.StoreRegs[2], len(a.WriteMem.PopRegs))
	fmt.Printf("  vulnerable buffer at 0x%04X, frame %dB, handler returns to 0x%X\n\n",
		a.BufAddr, a.FrameBytes, a.OrigRet*2)

	fly := func(g *gcs.GroundStation, d time.Duration) error {
		for e := time.Duration(0); e < d; e += 10 * time.Millisecond {
			if err := g.Step(10 * time.Millisecond); err != nil {
				return err
			}
		}
		return nil
	}
	newVictim := func() (*gcs.GroundStation, error) {
		sys := board.NewSystem(board.SystemConfig{Unprotected: true})
		if err := sys.FlashFirmware(img); err != nil {
			return nil, err
		}
		if _, err := sys.Boot(); err != nil {
			return nil, err
		}
		g := gcs.NewGroundStation(sys)
		return g, fly(g, 100*time.Millisecond)
	}
	report := func(name string, g *gcs.GroundStation) {
		cfg := g.Sys.App.CPU.Data[firmware.AddrGyroCfg]
		detected := g.Mon.CompromiseDetected(200 * time.Millisecond)
		fmt.Printf("%s: gyro-config=0x%02X, board-faulted=%v, GCS-detected=%v (pulses=%d gaps=%d silence=%v)\n",
			name, cfg, g.Sys.LastFault() != nil, detected,
			g.Mon.Pulses, g.Mon.SeqGaps, g.Mon.MaxSilence.Round(time.Millisecond))
	}

	// --- V1: classic ROP, smashes the stack.
	g, err := newVictim()
	if err != nil {
		return err
	}
	p1, err := attack.BuildV1(a, attack.GyroCfgWrite(0x7F))
	if err != nil {
		return err
	}
	g.SendFrame(attack.Frame(p1))
	if err := fly(g, 600*time.Millisecond); err != nil {
		return err
	}
	report("V1 (basic ROP)     ", g)

	// --- V2: stealthy clean return.
	g, err = newVictim()
	if err != nil {
		return err
	}
	p2, err := attack.BuildV2(a, attack.GyroCfgWrite(0x7F))
	if err != nil {
		return err
	}
	g.SendFrame(attack.Frame(p2))
	if err := fly(g, 600*time.Millisecond); err != nil {
		return err
	}
	report("V2 (stealthy)      ", g)

	// --- V3: trampoline, arbitrarily large payload.
	g, err = newVictim()
	if err != nil {
		return err
	}
	var big []attack.Write
	for i := 0; i < 16; i++ {
		big = append(big, attack.Write{Addr: 0x1800 + uint16(3*i), Vals: [3]byte{0xDE, 0xAD, byte(i)}})
	}
	packets, err := attack.BuildV3(a, big, firmware.AddrFreeMem)
	if err != nil {
		return err
	}
	fmt.Printf("\nV3: staging a %d-byte chain via %d stealthy packets...\n",
		attack.StagedChainLen(a, len(big)), len(packets))
	for _, p := range packets {
		g.SendFrame(attack.Frame(p))
		if err := fly(g, 60*time.Millisecond); err != nil {
			return err
		}
	}
	if err := fly(g, 300*time.Millisecond); err != nil {
		return err
	}
	report("V3 (trampoline)    ", g)
	fmt.Printf("    staged 48-byte rogue block at 0x1800: % X ...\n",
		g.Sys.App.CPU.Data[0x1800:0x1806])

	// --- Fig. 6: stack progression during the stealthy attack.
	fmt.Printf("\nFig. 6 — stack progression during the V2 attack:\n\n")
	snaps, err := attack.TraceV2(a, img.Flash, attack.GyroCfgWrite(0x7F))
	if err != nil {
		return err
	}
	for _, s := range snaps {
		fmt.Println(s)
	}
	return nil
}
