// Defense demo (paper §V, §VII-A): the same stealthy attack that owned
// the unprotected board fails against MAVR; the master processor's
// timing analysis detects the failure and re-randomizes in flight.
package main

import (
	"fmt"
	"log"
	"time"

	"mavr/internal/attack"
	"mavr/internal/board"
	"mavr/internal/firmware"
	"mavr/internal/gcs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		return err
	}
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		return err
	}
	payload, err := attack.BuildV2(a, attack.GyroCfgWrite(0x7F))
	if err != nil {
		return err
	}

	fly := func(g *gcs.GroundStation, d time.Duration) error {
		for e := time.Duration(0); e < d; e += 10 * time.Millisecond {
			if err := g.Step(10 * time.Millisecond); err != nil {
				return err
			}
		}
		return nil
	}

	// Control: the attack succeeds against the unprotected board.
	open := board.NewSystem(board.SystemConfig{Unprotected: true})
	if err := open.FlashFirmware(img); err != nil {
		return err
	}
	if _, err := open.Boot(); err != nil {
		return err
	}
	og := gcs.NewGroundStation(open)
	if err := fly(og, 100*time.Millisecond); err != nil {
		return err
	}
	og.SendFrame(attack.Frame(payload))
	if err := fly(og, 400*time.Millisecond); err != nil {
		return err
	}
	fmt.Printf("unprotected board: gyro-config=0x%02X (attack %s)\n",
		open.App.CPU.Data[firmware.AddrGyroCfg],
		map[bool]string{true: "SUCCEEDED", false: "failed"}[open.App.CPU.Data[firmware.AddrGyroCfg] == 0x7F])

	// MAVR board: same payload, randomized layout.
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{
		Seed:            7,
		WatchdogTimeout: 20 * time.Millisecond,
	}})
	if err := sys.FlashFirmware(img); err != nil {
		return err
	}
	rep, err := sys.Boot()
	if err != nil {
		return err
	}
	fmt.Printf("\nMAVR board: boot randomized %d blocks, startup overhead %v\n",
		len(sys.Master.CurrentPerm()), rep.Total.Round(time.Millisecond))

	g := gcs.NewGroundStation(sys)
	if err := fly(g, 100*time.Millisecond); err != nil {
		return err
	}
	g.SendFrame(attack.Frame(payload))
	if err := fly(g, 4*time.Second); err != nil {
		return err
	}
	st := sys.Master.Stats()
	fmt.Printf("after the stale stealthy attack:\n")
	fmt.Printf("  gyro-config=0x%02X (attack %s)\n",
		sys.App.CPU.Data[firmware.AddrGyroCfg],
		map[bool]string{true: "succeeded", false: "FAILED"}[sys.App.CPU.Data[firmware.AddrGyroCfg] == 0x7F])
	fmt.Printf("  master detected %d failed attack(s), re-randomized %d time(s)\n",
		st.FailuresDetected, st.Randomizations-1)
	before := g.Mon.Pulses
	if err := fly(g, 200*time.Millisecond); err != nil {
		return err
	}
	fmt.Printf("  vehicle recovered in flight: %d fresh telemetry pulses\n", g.Mon.Pulses-before)
	fmt.Printf("  flash endurance consumed: %d/%d program cycles\n",
		st.ProgramCycles, board.FlashEndurance)
	return nil
}
