// Brute-force evaluation (paper §V-D, §VII-A1, §VIII-B): Monte-Carlo
// measurement of attacker effort against a fixed permutation versus
// MAVR's re-randomize-on-failure policy, plus the analytic models and
// entropy figures for the real applications.
package main

import (
	"fmt"
	"math/rand"

	"mavr/internal/core"
	"mavr/internal/firmware"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	fmt.Println("Monte-Carlo brute force (guess the permutation), 4000 trials each:")
	fmt.Println("  n   n!      fixed-layout mean (model (n!+1)/2)   MAVR mean (model n!)")
	for _, n := range []int{3, 4, 5} {
		fixed := core.SimulateBruteForceFixed(rng, n, 4000)
		rer := core.SimulateBruteForceRerandomized(rng, n, 4000)
		fmt.Printf("  %d  %4d        %8.1f (%8.1f)              %8.1f (%8.1f)\n",
			n, fixed.Permutations, fixed.MeanAttempts, fixed.ModelAttempts,
			rer.MeanAttempts, rer.ModelAttempts)
	}

	fmt.Println("\nScaled to the paper's applications (Table I symbol counts):")
	for _, spec := range firmware.Profiles() {
		fmt.Printf("  %-10s  %4d symbols  entropy %7.0f bits  expected attempts ~2^%.0f\n",
			spec.Name, spec.Functions, core.EntropyBits(spec.Functions),
			core.EntropyBits(spec.Functions))
	}
	fmt.Println("\nThe paper's §VIII-B figure: ArduRover's 800 symbols give")
	fmt.Printf("%.0f bits of permutation entropy (paper: 6567).\n", core.EntropyBits(800))
}
