// Quickstart: build a synthetic autopilot, protect it with MAVR, boot
// the board and exchange traffic with the ground station.
package main

import (
	"fmt"
	"log"
	"time"

	"mavr/internal/board"
	"mavr/internal/core"
	"mavr/internal/firmware"
	"mavr/internal/gcs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. "Compile" an autopilot application with the MAVR-compatible
	// toolchain flags (-mno-call-prologues --no-relax).
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		return err
	}
	fmt.Printf("built %s: %d bytes, %d function symbols\n",
		img.Spec.Name, len(img.Flash), len(img.ELF.FuncSymbols()))

	// 2. Preprocess the ELF on the host: extract function blocks and
	// data-section function pointers, ready for the external flash.
	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		return err
	}
	fmt.Printf("preprocessed: %d blocks tiling [0x%X, 0x%X), %d function pointers\n",
		len(pre.Blocks), pre.RegionStart, pre.RegionEnd, len(pre.PtrOffsets))
	fmt.Printf("randomization entropy: %.0f bits (log2(%d!))\n",
		core.EntropyBits(len(pre.Blocks)), len(pre.Blocks))

	// 3. Assemble the MAVR board, flash, and boot. The master processor
	// randomizes the binary and programs the application processor.
	sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{Seed: 1}})
	if err := sys.FlashFirmware(img); err != nil {
		return err
	}
	rep, err := sys.Boot()
	if err != nil {
		return err
	}
	fmt.Printf("boot: randomized=%v, programmed %d bytes in %v over the %d-baud bootloader\n",
		rep.Randomized, rep.ImageBytes, rep.Total.Round(time.Millisecond), board.DefaultProgramBaud)

	// 4. Fly for a second of simulated time and set a parameter.
	station := gcs.NewGroundStation(sys)
	station.SetParam("RATE_RLL_P", 1.5)
	for i := 0; i < 100; i++ {
		if err := station.Step(10 * time.Millisecond); err != nil {
			return err
		}
	}
	fmt.Printf("flew 1s: %d telemetry pulses, gyro=%d, anomalies: garbage=%d gaps=%d\n",
		station.Mon.Pulses, station.Mon.LastGyro, station.Mon.Garbage, station.Mon.SeqGaps)

	// 5. The randomized binary is physically unreadable.
	if _, err := sys.App.ReadFlashExternally(); err != nil {
		fmt.Printf("debugger readout: %v\n", err)
	}
	return nil
}
