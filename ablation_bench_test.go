// Ablation benchmarks for the design choices discussed in the paper's
// §VI-B4 (software bootloader vs hardware ISP), §VIII-A (software-only
// vs hardware-assisted deployment), §VIII-B (random padding), §V-C
// (randomization frequency vs flash endurance) and §IX (runtime checks
// such as stack canaries).
package mavr_test

import (
	"math/rand"
	"testing"
	"time"

	"mavr/internal/attack"
	"mavr/internal/avr"
	"mavr/internal/board"
	"mavr/internal/core"
	"mavr/internal/firmware"
)

// §VI-B4: attacks built on bootloader-resident gadgets survive every
// randomization; hardware ISP removes the static code entirely.
func BenchmarkAblation_BootloaderGadgetSurvival(b *testing.B) {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		b.Fatal(err)
	}
	a, err := attack.Analyze(img.ELF)
	if err != nil {
		b.Fatal(err)
	}
	if err := a.UseFixedGadgets(img.Bootloader, firmware.BootloaderStart); err != nil {
		b.Fatal(err)
	}
	payload, err := attack.BuildV1(a, attack.GyroCfgWrite(0x6A))
	if err != nil {
		b.Fatal(err)
	}
	pre, err := core.Preprocess(img.ELF)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	landed := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.Randomize(pre, core.Permutation(rng, len(pre.Blocks)))
		if err != nil {
			b.Fatal(err)
		}
		full := img.FullFlash()
		copy(full, r.Image)
		copy(full[firmware.BootloaderStart:], img.Bootloader)
		sim, err := attack.NewSim(full)
		if err != nil {
			b.Fatal(err)
		}
		_ = sim.Deliver(attack.Frame(payload), 300_000)
		if sim.CPU.Data[firmware.AddrGyroCfg] == 0x6A {
			landed++
		}
	}
	b.ReportMetric(float64(landed)/float64(b.N), "write_landed_rate")
}

// §IX: per-packet cycle cost of a stack canary versus MAVR's zero
// runtime overhead.
func BenchmarkAblation_CanaryRuntimeOverhead(b *testing.B) {
	measure := func(canary bool) uint64 {
		spec := firmware.TestApp()
		spec.StackCanaries = canary
		img, err := firmware.Generate(spec, firmware.ModeMAVR)
		if err != nil {
			b.Fatal(err)
		}
		var handler uint32
		for _, s := range img.ELF.FuncSymbols() {
			if s.Name == "handle_param_set" {
				handler = s.Value / 2
			}
		}
		sim, err := attack.NewSim(img.Flash)
		if err != nil {
			b.Fatal(err)
		}
		probe := attack.Frame(make([]byte, 23))
		sim.SendFrame(probe)
		ok, _ := sim.CPU.RunUntil(5_000_000, func(c *avr.CPU) bool { return c.PC == handler })
		if !ok {
			b.Fatal("handler never reached")
		}
		entry := sim.CPU.Cycles
		sp := sim.CPU.SP()
		ok, _ = sim.CPU.RunUntil(100_000, func(c *avr.CPU) bool { return c.SP() > sp })
		if !ok {
			b.Fatal("handler never returned")
		}
		return sim.CPU.Cycles - entry
	}
	var plain, canary uint64
	for i := 0; i < b.N; i++ {
		plain = measure(false)
		canary = measure(true)
	}
	b.ReportMetric(float64(plain), "plain_cycles")
	b.ReportMetric(float64(canary), "canary_cycles")
	b.ReportMetric(float64(canary-plain), "overhead_cycles")
}

// §V-C: randomization frequency versus flash endurance. With 10,000
// program cycles and randomize-every-boot, the device wears out after
// 10,000 boots; randomizing every Nth boot extends life N-fold at the
// cost of layout reuse.
func BenchmarkAblation_RandomizationFrequencyEndurance(b *testing.B) {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		b.Fatal(err)
	}
	for _, every := range []int{1, 5, 20} {
		every := every
		name := map[int]string{1: "every_boot", 5: "every_5", 20: "every_20"}[every]
		b.Run(name, func(b *testing.B) {
			var cycles int
			for i := 0; i < b.N; i++ {
				sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{
					RandomizeEvery: every, Seed: int64(every),
				}})
				if err := sys.FlashFirmware(img); err != nil {
					b.Fatal(err)
				}
				const boots = 40
				for j := 0; j < boots; j++ {
					if _, err := sys.Boot(); err != nil {
						b.Fatal(err)
					}
				}
				cycles = sys.Master.Stats().ProgramCycles
			}
			b.ReportMetric(float64(cycles), "program_cycles_per_40_boots")
			b.ReportMetric(float64(board.FlashEndurance*40/cycles), "boot_lifetime")
		})
	}
}

// §VIII-A: the software-only deployment never re-randomizes — measure
// that its layout is bit-identical across flashes while MAVR's differs.
func BenchmarkAblation_SoftwareOnlyLayoutReuse(b *testing.B) {
	img, err := firmware.Generate(firmware.TestApp(), firmware.ModeMAVR)
	if err != nil {
		b.Fatal(err)
	}
	identical := 0
	for i := 0; i < b.N; i++ {
		layout := func() []byte {
			sys := board.NewSystem(board.SystemConfig{SoftwareOnly: true, SoftwareSeed: 3})
			if err := sys.FlashFirmware(img); err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Boot(); err != nil {
				b.Fatal(err)
			}
			d, err := sys.App.ReadFlashExternally()
			if err != nil {
				b.Fatal(err)
			}
			return d[:len(img.Flash)]
		}
		x, y := layout(), layout()
		same := true
		for j := range x {
			if x[j] != y[j] {
				same = false
				break
			}
		}
		if same {
			identical++
		}
	}
	b.ReportMetric(float64(identical)/float64(b.N), "layout_reuse_rate")
}

// §VIII-B: entropy of permutation vs optional padding.
func BenchmarkAblation_PaddingEntropy(b *testing.B) {
	var perm, pad float64
	for i := 0; i < b.N; i++ {
		perm = core.EntropyBits(800)
		pad = core.PaddingEntropyBits(800, (262144-177556)/2)
	}
	b.ReportMetric(perm, "perm_bits")
	b.ReportMetric(pad, "padding_bits")
}

// Production estimate of §VII-B1: at mega-baud rates the startup
// overhead falls to ~4s for ArduPlane-sized images.
func BenchmarkAblation_ProductionBaudStartup(b *testing.B) {
	img, err := firmware.Generate(firmware.Arduplane(), firmware.ModeMAVR)
	if err != nil {
		b.Fatal(err)
	}
	var ms int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := board.NewSystem(board.SystemConfig{Master: board.MasterConfig{
			Seed:        1,
			ProgramBaud: board.ProductionProgramBaud,
		}})
		if err := sys.FlashFirmware(img); err != nil {
			b.Fatal(err)
		}
		rep, err := sys.Boot()
		if err != nil {
			b.Fatal(err)
		}
		ms = rep.Total.Milliseconds()
	}
	b.ReportMetric(float64(ms), "sim_ms")
	b.ReportMetric(4000, "paper_estimate_ms")
	_ = time.Millisecond
}
