// Package mavr is a Go reproduction of "MAVR: Code Reuse Stealthy
// Attacks and Mitigation on Unmanned Aerial Vehicles" (Habibi, Gupta,
// Carlson, Panicker, Bertino — ICDCS 2015).
//
// The repository simulates the paper's entire hardware/software stack:
// an ATmega2560 application processor (internal/avr), an AVR
// assembler/disassembler (internal/asm), ELF and Intel HEX object
// formats (internal/elfobj, internal/hexfile), the MAVLink protocol
// (internal/mavlink), a synthetic ArduPilot-style firmware generator
// (internal/firmware), the attacker's gadget discovery and the three
// stealthy ROP attack generations (internal/gadget, internal/attack),
// the MAVR randomization defense (internal/core), and the full board
// with master processor, external flash, watchdog and ground station
// (internal/board, internal/gcs).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured results of every table and figure. The
// benchmarks in bench_test.go regenerate each evaluation artifact.
package mavr
