module mavr

go 1.22
